let uniform ~nodes ~edges ~labels ~seed =
  if labels = [] then invalid_arg "Generators.uniform: empty label list";
  let rng = Prng.create ~seed in
  let g = Digraph.create () in
  let node_ids = Array.init nodes (fun i -> Digraph.add_node g (Printf.sprintf "v%d" i)) in
  if nodes > 0 then begin
    let added = ref 0 in
    let attempts = ref 0 in
    let max_attempts = (edges * 20) + 100 in
    while !added < edges && !attempts < max_attempts do
      incr attempts;
      let src = Prng.pick_arr rng node_ids in
      let dst = Prng.pick_arr rng node_ids in
      let label = Prng.pick rng labels in
      let before = Digraph.n_edges g in
      Digraph.add_edge g ~src ~label ~dst;
      if Digraph.n_edges g > before then incr added
    done
  end;
  g

let pack_uniform ~path ~nodes ~edges ~labels ~seed =
  if labels = [] then invalid_arg "Generators.pack_uniform: empty label list";
  if nodes <= 0 then invalid_arg "Generators.pack_uniform: need at least one node";
  let labels = Array.of_list labels in
  let nl = Array.length labels in
  (* The stream must replay byte-identically across the two packing
     passes, so the PRNG is recreated from the seed inside the callback
     — stream position is a pure function of (seed, edge index). Unlike
     [uniform] there is no heap edge set to dedup against: duplicate
     triples are kept (selection sets are unaffected). *)
  let iter_edges f =
    let rng = Prng.create ~seed in
    for _ = 1 to edges do
      let src = Prng.int rng nodes in
      let dst = Prng.int rng nodes in
      let label = Prng.int rng nl in
      f ~src ~label ~dst
    done
  in
  Disk_csr.pack_stream ~path ~n_nodes:nodes ~n_edges:edges
    ~node_name:(Printf.sprintf "v%d") ~labels ~iter_edges

let preferential ~nodes ~attach ~labels ~seed =
  if labels = [] then invalid_arg "Generators.preferential: empty label list";
  let rng = Prng.create ~seed in
  let g = Digraph.create () in
  (* [targets] repeats each node once per incident edge, so uniform picks
     from it are degree-proportional. *)
  let targets = Vec.create () in
  for i = 0 to nodes - 1 do
    let v = Digraph.add_node g (Printf.sprintf "v%d" i) in
    if i = 0 then ignore (Vec.push targets v)
    else begin
      let emitted = min attach i in
      for _ = 1 to emitted do
        let dst = Vec.get targets (Prng.int rng (Vec.length targets)) in
        let label = Prng.pick rng labels in
        Digraph.add_edge g ~src:v ~label ~dst;
        ignore (Vec.push targets dst)
      done;
      ignore (Vec.push targets v)
    end
  done;
  g

type city_params = {
  districts : int;
  cinemas : int;
  restaurants : int;
  museums : int;
  parks : int;
  tram_lines : int;
  bus_lines : int;
  metro_lines : int;
  line_stops : int;
}

let default_city ~districts =
  {
    districts;
    cinemas = max 1 (districts / 4);
    restaurants = max 1 (districts / 4);
    museums = max 1 (districts / 4);
    parks = max 1 (districts / 4);
    tram_lines = max 1 (districts / 8);
    bus_lines = max 1 (districts / 8);
    metro_lines = max 1 (districts / 8);
    line_stops = max 3 (min 5 districts);
  }

let city params ~seed =
  if params.districts <= 0 then invalid_arg "Generators.city: need at least one district";
  let rng = Prng.create ~seed in
  let g = Digraph.create () in
  let districts =
    Array.init params.districts (fun i -> Digraph.add_node g (Printf.sprintf "D%d" i))
  in
  (* A transport line visits [line_stops] distinct random districts in a
     path, with edges in both directions (you can ride either way). *)
  let add_line label =
    let stops = min params.line_stops params.districts in
    let route =
      List.filteri (fun i _ -> i < stops)
        (Prng.shuffle rng (Array.to_list districts))
    in
    let rec wire = function
      | a :: (b :: _ as rest) ->
          Digraph.add_edge g ~src:a ~label ~dst:b;
          Digraph.add_edge g ~src:b ~label ~dst:a;
          wire rest
      | [ _ ] | [] -> ()
    in
    wire route
  in
  for _ = 1 to params.tram_lines do add_line "tram" done;
  for _ = 1 to params.bus_lines do add_line "bus" done;
  for _ = 1 to params.metro_lines do add_line "metro" done;
  (* Facilities hang off random districts; the [in] back-edge lets queries
     walk back into the transport network if they want to. *)
  let add_facility kind count =
    for i = 0 to count - 1 do
      let f = Digraph.add_node g (Printf.sprintf "%s%d" kind i) in
      let d = Prng.pick_arr rng districts in
      Digraph.add_edge g ~src:d ~label:kind ~dst:f;
      Digraph.add_edge g ~src:f ~label:"in" ~dst:d
    done
  in
  add_facility "cinema" params.cinemas;
  add_facility "restaurant" params.restaurants;
  add_facility "museum" params.museums;
  add_facility "park" params.parks;
  g

let bio ~nodes ~seed =
  if nodes < 10 then invalid_arg "Generators.bio: need at least 10 nodes";
  let rng = Prng.create ~seed in
  let g = Digraph.create () in
  let n_proteins = nodes * 6 / 10 in
  let n_genes = nodes * 2 / 10 in
  let n_drugs = max 1 (nodes / 10) in
  let n_diseases = max 1 (nodes - n_proteins - n_genes - n_drugs) in
  let mk prefix n = Array.init n (fun i -> Digraph.add_node g (Printf.sprintf "%s%d" prefix i)) in
  let proteins = mk "P" n_proteins in
  let genes = mk "G" n_genes in
  let drugs = mk "DR" n_drugs in
  let diseases = mk "S" n_diseases in
  (* Protein-protein interactions: preferential attachment for the skewed
     hubs characteristic of interaction networks; [interacts] symmetric. *)
  let targets = Vec.create () in
  ignore (Vec.push targets proteins.(0));
  Array.iteri
    (fun i p ->
      if i > 0 then begin
        let emitted = min 2 i in
        for _ = 1 to emitted do
          let q = Vec.get targets (Prng.int rng (Vec.length targets)) in
          Digraph.add_edge g ~src:p ~label:"interacts" ~dst:q;
          Digraph.add_edge g ~src:q ~label:"interacts" ~dst:p;
          ignore (Vec.push targets q)
        done;
        ignore (Vec.push targets p)
      end)
    proteins;
  (* Directed regulation edges among proteins. *)
  for _ = 1 to n_proteins do
    let src = Prng.pick_arr rng proteins and dst = Prng.pick_arr rng proteins in
    let label = if Prng.bool rng then "activates" else "inhibits" in
    Digraph.add_edge g ~src ~label ~dst
  done;
  Array.iter
    (fun gene ->
      Digraph.add_edge g ~src:gene ~label:"encodes" ~dst:(Prng.pick_arr rng proteins))
    genes;
  Array.iter
    (fun drug ->
      Digraph.add_edge g ~src:drug ~label:"binds" ~dst:(Prng.pick_arr rng proteins);
      let label = if Prng.bool rng then "activates" else "inhibits" in
      Digraph.add_edge g ~src:drug ~label ~dst:(Prng.pick_arr rng proteins);
      Digraph.add_edge g ~src:drug ~label:"treats" ~dst:(Prng.pick_arr rng diseases))
    drugs;
  for _ = 1 to n_diseases * 2 do
    Digraph.add_edge g ~src:(Prng.pick_arr rng proteins) ~label:"associated"
      ~dst:(Prng.pick_arr rng diseases)
  done;
  g

let chain ~length ~label =
  let g = Digraph.create () in
  for i = 0 to length - 1 do
    Digraph.link g (Printf.sprintf "c%d" i) label (Printf.sprintf "c%d" (i + 1))
  done;
  if length <= 0 then ignore (Digraph.add_node g "c0");
  g

let grid ~rows ~cols =
  let g = Digraph.create () in
  let name r c = Printf.sprintf "r%dc%d" r c in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      ignore (Digraph.add_node g (name r c));
      if c + 1 < cols then Digraph.link g (name r c) "east" (name r (c + 1));
      if r + 1 < rows then Digraph.link g (name r c) "south" (name (r + 1) c)
    done
  done;
  g

let star ~leaves ~label =
  let g = Digraph.create () in
  ignore (Digraph.add_node g "hub");
  for i = 0 to leaves - 1 do
    Digraph.link g "hub" label (Printf.sprintf "leaf%d" i)
  done;
  g

let full_tree ~depth ~branching ~labels =
  if labels = [] then invalid_arg "Generators.full_tree: empty label list";
  let g = Digraph.create () in
  let labels = Array.of_list labels in
  let rec grow name level =
    ignore (Digraph.add_node g name);
    if level < depth then
      for i = 0 to branching - 1 do
        let child = Printf.sprintf "%s.%d" name i in
        Digraph.link g name labels.(i mod Array.length labels) child;
        grow child (level + 1)
      done
  in
  grow "t" 0;
  g
