type int_arr = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
type char_arr = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

let word = 8
let header_cells = 8
let format_version = 1
let magic_string = "GPSCSR01"

(* The magic as a word cell: the 8 magic bytes read as one little-endian
   int. 0x3130525343535047 < max_int, so it round-trips through an OCaml
   int. If the bytes match but the word does not, the file was written
   on a foreign byte order. *)
let magic_word =
  let w = ref 0 in
  for i = 7 downto 0 do
    w := (!w lsl 8) lor Char.code magic_string.[i]
  done;
  !w

let node_bits = 40
let node_mask = (1 lsl node_bits) - 1
let max_labels = 1 lsl (62 - node_bits)
let pad8 n = (n + 7) land lnot 7

(* Integrity trailer, appended after the packed payload: 8 magic bytes,
   u64 LE payload length, u64 LE CRC32 of the payload. Readers that
   predate the trailer already tolerate size >= expected, so old and new
   binaries interoperate in both directions. *)
let trailer_magic = "GPSCKSUM"
let trailer_bytes = 24

(* ------------------------------------------------------------------ *)
(* Mapped base file                                                    *)
(* ------------------------------------------------------------------ *)

type base = {
  b_path : string;
  n : int;
  m : int;
  nl : int;
  out_off : int_arr;  (* n+1 *)
  in_off : int_arr;  (* n+1 *)
  out_cells : int_arr;  (* m *)
  in_cells : int_arr;  (* m *)
  name_off : int_arr;  (* n+1, byte offsets into the name blob *)
  chars : char_arr;  (* the whole file *)
  name_blob_at : int;  (* absolute byte offset of the name blob *)
  b_labels : string array;  (* decoded eagerly: nl is small *)
  b_label_ids : (string, int) Hashtbl.t;
  bytes_total : int;
  data_bytes : int;  (* payload size the header implies (trailer excluded) *)
  stored_crc : int option;  (* from the trailer, if the file has one *)
}

type open_error =
  | No_such_file of string
  | Not_regular of string
  | Bad_magic
  | Bad_endianness
  | Bad_version of int
  | Truncated of { expected : int; actual : int }
  | Corrupted of string

let pp_open_error ppf = function
  | No_such_file p -> Format.fprintf ppf "no such file: %s" p
  | Not_regular p -> Format.fprintf ppf "not a regular file: %s" p
  | Bad_magic -> Format.fprintf ppf "bad magic (not a GPSCSR file)"
  | Bad_endianness -> Format.fprintf ppf "foreign byte order (file written on a big-endian host?)"
  | Bad_version v -> Format.fprintf ppf "unsupported format version %d (expected %d)" v format_version
  | Truncated { expected; actual } ->
      Format.fprintf ppf "truncated: %d bytes, header implies %d" actual expected
  | Corrupted msg -> Format.fprintf ppf "corrupted: %s" msg

let open_error_to_string e = Format.asprintf "%a" pp_open_error e

(* Section start indices, in word cells. *)
let out_off_at _n = header_cells
let in_off_at n = header_cells + (n + 1)
let out_cells_at n = header_cells + (2 * (n + 1))
let in_cells_at n m = header_cells + (2 * (n + 1)) + m
let label_off_at n m = header_cells + (2 * (n + 1)) + (2 * m)
let name_off_at n m nl = label_off_at n m + (nl + 1)
let ints_total n m nl = name_off_at n m nl + (n + 1)

let file_size n m nl ~label_bytes ~name_bytes =
  (ints_total n m nl * word) + pad8 (label_bytes + name_bytes)

let sub_ints (ints : int_arr) at len : int_arr = Bigarray.Array1.sub ints at len

let blob_string (chars : char_arr) ~at ~len =
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.unsafe_set b i (Bigarray.Array1.unsafe_get chars (at + i))
  done;
  Bytes.unsafe_to_string b

let map_fd fd kind len =
  Bigarray.array1_of_genarray (Unix.map_file fd kind Bigarray.c_layout false [| len |])

let open_base path =
  let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e in
  let* fd =
    match Unix.openfile path [ Unix.O_RDONLY ] 0 with
    | fd -> Ok fd
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> Error (No_such_file path)
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let st = Unix.fstat fd in
      let* () = if st.Unix.st_kind = Unix.S_REG then Ok () else Error (Not_regular path) in
      let size = st.Unix.st_size in
      let* () =
        if size >= header_cells * word then Ok ()
        else Error (Truncated { expected = header_cells * word; actual = size })
      in
      let chars = map_fd fd Bigarray.char size in
      let* () =
        let ok = ref true in
        for i = 0 to 7 do
          if Bigarray.Array1.get chars i <> magic_string.[i] then ok := false
        done;
        if !ok then Ok () else Error Bad_magic
      in
      let ints = map_fd fd Bigarray.int (size / word) in
      let* () = if ints.{0} = magic_word then Ok () else Error Bad_endianness in
      let version = ints.{1} in
      let* () = if version = format_version then Ok () else Error (Bad_version version) in
      let n = ints.{2} and m = ints.{3} and nl = ints.{4} in
      let label_bytes = ints.{5} and name_bytes = ints.{6} in
      let* () =
        if n >= 0 && m >= 0 && nl >= 0 && label_bytes >= 0 && name_bytes >= 0
           && n <= node_mask && nl <= max_labels
        then Ok ()
        else Error (Corrupted "negative or oversized header field")
      in
      let expected = file_size n m nl ~label_bytes ~name_bytes in
      let* () = if size >= expected then Ok () else Error (Truncated { expected; actual = size }) in
      let u64_at off =
        let w = ref 0 in
        for i = 7 downto 0 do
          w := (!w lsl 8) lor Char.code (Bigarray.Array1.get chars (off + i))
        done;
        !w
      in
      let* stored_crc =
        if size < expected + trailer_bytes then Ok None
        else begin
          let is_trailer = ref true in
          for i = 0 to 7 do
            if Bigarray.Array1.get chars (expected + i) <> trailer_magic.[i] then
              is_trailer := false
          done;
          if not !is_trailer then Ok None (* pre-trailer file, or foreign padding *)
          else if u64_at (expected + 8) <> expected then
            Error (Corrupted "checksum trailer length disagrees with header")
          else Ok (Some (u64_at (expected + 16)))
        end
      in
      let out_off = sub_ints ints (out_off_at n) (n + 1) in
      let in_off = sub_ints ints (in_off_at n) (n + 1) in
      let out_cells = sub_ints ints (out_cells_at n) m in
      let in_cells = sub_ints ints (in_cells_at n m) m in
      let label_off = sub_ints ints (label_off_at n m) (nl + 1) in
      let name_off = sub_ints ints (name_off_at n m nl) (n + 1) in
      let* () =
        let endpoints_ok =
          out_off.{0} = 0 && out_off.{n} = m && in_off.{0} = 0 && in_off.{n} = m
          && label_off.{0} = 0
          && label_off.{nl} = label_bytes
          && name_off.{0} = 0
          && name_off.{n} = name_bytes
        in
        if endpoints_ok then Ok () else Error (Corrupted "offset endpoints disagree with header")
      in
      let label_blob_at = ints_total n m nl * word in
      let name_blob_at = label_blob_at + label_bytes in
      let b_labels =
        Array.init nl (fun l ->
            blob_string chars ~at:(label_blob_at + label_off.{l})
              ~len:(label_off.{l + 1} - label_off.{l}))
      in
      let b_label_ids = Hashtbl.create (max 16 nl) in
      Array.iteri (fun l s -> if not (Hashtbl.mem b_label_ids s) then Hashtbl.add b_label_ids s l) b_labels;
      Ok
        {
          b_path = path;
          n;
          m;
          nl;
          out_off;
          in_off;
          out_cells;
          in_cells;
          name_off;
          chars;
          name_blob_at;
          b_labels;
          b_label_ids;
          bytes_total = size;
          data_bytes = expected;
          stored_crc;
        })

type verify_result =
  | Verified of { crc : int; bytes : int }
  | No_trailer
  | Crc_mismatch of { stored : int; computed : int }

let verify_base b =
  match b.stored_crc with
  | None -> No_trailer
  | Some stored ->
      let computed = Crc32.bigstring b.chars ~pos:0 ~len:b.data_bytes in
      if computed = stored then Verified { crc = stored; bytes = b.data_bytes }
      else Crc_mismatch { stored; computed }

let base_node_name b v =
  if v < 0 || v >= b.n then invalid_arg (Printf.sprintf "Disk_csr.node_name: node %d out of range" v);
  blob_string b.chars
    ~at:(b.name_blob_at + b.name_off.{v})
    ~len:(b.name_off.{v + 1} - b.name_off.{v})

(* ------------------------------------------------------------------ *)
(* Delta overlay                                                       *)
(* ------------------------------------------------------------------ *)

module Imap = Map.Make (Int)
module Smap = Map.Make (String)

module Tset = Set.Make (struct
  type t = int * int * int

  let compare = compare
end)

type overlay = {
  o_count : int;
  o_out : (int * int) list Imap.t;  (* src -> (label, dst), newest first *)
  o_in : (int * int) list Imap.t;  (* dst -> (label, src), newest first *)
  o_set : Tset.t;
  x_names : string array;  (* overlay node names; id = base n + index *)
  x_ids : int Smap.t;  (* overlay node name -> absolute id *)
  x_labels : string array;  (* overlay label names; id = base nl + index *)
  x_label_ids : int Smap.t;
}

let empty_overlay =
  {
    o_count = 0;
    o_out = Imap.empty;
    o_in = Imap.empty;
    o_set = Tset.empty;
    x_names = [||];
    x_ids = Smap.empty;
    x_labels = [||];
    x_label_ids = Smap.empty;
  }

type t = {
  base : base;
  lock : Mutex.t;
  ov : overlay Atomic.t;
  mutable name_index : (string, int) Hashtbl.t option;
      (* base node name -> id; O(n) to build, so only on the first add_edges *)
}

let open_map path =
  match open_base path with
  | Error _ as e -> e
  | Ok base -> Ok { base; lock = Mutex.create (); ov = Atomic.make empty_overlay; name_index = None }

let path t = t.base.b_path
let base_nodes t = t.base.n
let base_edges t = t.base.m
let base_labels t = t.base.nl
let file_bytes t = t.base.bytes_total
let has_trailer t = t.base.stored_crc <> None
let verify t = verify_base t.base
let overlay_edges t = (Atomic.get t.ov).o_count

(* Must hold t.lock. *)
let base_name_index t =
  match t.name_index with
  | Some h -> h
  | None ->
      let h = Hashtbl.create (max 16 t.base.n) in
      for v = 0 to t.base.n - 1 do
        let s = base_node_name t.base v in
        if not (Hashtbl.mem h s) then Hashtbl.add h s v
      done;
      t.name_index <- Some h;
      h

type delta = { added : int; new_nodes : int; labels : string list }

let base_has_edge b ~src ~lbl ~dst =
  if src >= b.n || lbl >= b.nl || dst >= b.n then false
  else begin
    let found = ref false in
    let lo = b.out_off.{src} and hi = b.out_off.{src + 1} in
    let cell = (lbl lsl node_bits) lor dst in
    let i = ref lo in
    while (not !found) && !i < hi do
      if Bigarray.Array1.unsafe_get b.out_cells !i = cell then found := true;
      incr i
    done;
    !found
  end

let add_edges t triples =
  Mutex.protect t.lock (fun () ->
      let b = t.base in
      let names = base_name_index t in
      let ov = Atomic.get t.ov in
      let x_ids = ref ov.x_ids and x_new = ref [] and x_count = ref (Array.length ov.x_names) in
      let x_label_ids = ref ov.x_label_ids
      and x_lnew = ref []
      and x_lcount = ref (Array.length ov.x_labels) in
      let node_id name =
        match Hashtbl.find_opt names name with
        | Some v -> v
        | None -> (
            match Smap.find_opt name !x_ids with
            | Some v -> v
            | None ->
                let v = b.n + !x_count in
                incr x_count;
                x_new := name :: !x_new;
                x_ids := Smap.add name v !x_ids;
                v)
      in
      let label_id name =
        match Hashtbl.find_opt b.b_label_ids name with
        | Some l -> l
        | None -> (
            match Smap.find_opt name !x_label_ids with
            | Some l -> l
            | None ->
                let l = b.nl + !x_lcount in
                incr x_lcount;
                x_lnew := name :: !x_lnew;
                x_label_ids := Smap.add name l !x_label_ids;
                l)
      in
      let o_out = ref ov.o_out
      and o_in = ref ov.o_in
      and o_set = ref ov.o_set
      and added = ref 0
      and touched = ref Smap.empty in
      List.iter
        (fun (src_n, lbl_n, dst_n) ->
          let src = node_id src_n and dst = node_id dst_n in
          let lbl = label_id lbl_n in
          let triple = (src, lbl, dst) in
          if (not (Tset.mem triple !o_set)) && not (base_has_edge b ~src ~lbl ~dst) then begin
            o_set := Tset.add triple !o_set;
            o_out :=
              Imap.update src
                (fun l -> Some ((lbl, dst) :: Option.value l ~default:[]))
                !o_out;
            o_in :=
              Imap.update dst
                (fun l -> Some ((lbl, src) :: Option.value l ~default:[]))
                !o_in;
            incr added;
            touched := Smap.add lbl_n () !touched
          end)
        triples;
      let appended old fresh = Array.append old (Array.of_list (List.rev fresh)) in
      let new_nodes = !x_count - Array.length ov.x_names in
      let ov' =
        {
          o_count = ov.o_count + !added;
          o_out = !o_out;
          o_in = !o_in;
          o_set = !o_set;
          x_names = appended ov.x_names !x_new;
          x_ids = !x_ids;
          x_labels = appended ov.x_labels !x_lnew;
          x_label_ids = !x_label_ids;
        }
      in
      Atomic.set t.ov ov';
      { added = !added; new_nodes; labels = List.map fst (Smap.bindings !touched) })

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type view = { v_base : base; v_ov : overlay }

let snapshot t = { v_base = t.base; v_ov = Atomic.get t.ov }
let n_nodes v = v.v_base.n + Array.length v.v_ov.x_names
let n_edges v = v.v_base.m + v.v_ov.o_count
let n_labels v = v.v_base.nl + Array.length v.v_ov.x_labels
let view_overlay_edges v = v.v_ov.o_count
let overlay_is_empty v = v.v_ov.o_count = 0 && Array.length v.v_ov.x_names = 0

let node_name v id =
  if id < v.v_base.n then base_node_name v.v_base id
  else begin
    let i = id - v.v_base.n in
    if i < 0 || i >= Array.length v.v_ov.x_names then
      invalid_arg (Printf.sprintf "Disk_csr.node_name: node %d out of range" id);
    v.v_ov.x_names.(i)
  end

let label_name v l =
  if l >= 0 && l < v.v_base.nl then v.v_base.b_labels.(l)
  else begin
    let i = l - v.v_base.nl in
    if i < 0 || i >= Array.length v.v_ov.x_labels then
      invalid_arg (Printf.sprintf "Disk_csr.label_name: label %d out of range" l);
    v.v_ov.x_labels.(i)
  end

let label_of_name v s =
  match Hashtbl.find_opt v.v_base.b_label_ids s with
  | Some _ as r -> r
  | None -> Smap.find_opt s v.v_ov.x_label_ids

let cell_label c = c lsr node_bits
let cell_node c = c land node_mask

let check_node v id name =
  if id < 0 || id >= n_nodes v then
    invalid_arg (Printf.sprintf "Disk_csr.%s: node %d out of range" name id)

let overlay_iter_in v id f =
  match Imap.find_opt id v.v_ov.o_in with
  | None -> ()
  | Some l -> List.iter (fun (lbl, s) -> f lbl s) l

let overlay_iter_out v id f =
  match Imap.find_opt id v.v_ov.o_out with
  | None -> ()
  | Some l -> List.iter (fun (lbl, d) -> f lbl d) l

let iter_in v id f =
  check_node v id "iter_in";
  let b = v.v_base in
  if id < b.n then begin
    let lo = b.in_off.{id} and hi = b.in_off.{id + 1} in
    for i = lo to hi - 1 do
      let c = Bigarray.Array1.unsafe_get b.in_cells i in
      f (c lsr node_bits) (c land node_mask)
    done
  end;
  overlay_iter_in v id f

let iter_out v id f =
  check_node v id "iter_out";
  let b = v.v_base in
  if id < b.n then begin
    let lo = b.out_off.{id} and hi = b.out_off.{id + 1} in
    for i = lo to hi - 1 do
      let c = Bigarray.Array1.unsafe_get b.out_cells i in
      f (c lsr node_bits) (c land node_mask)
    done
  end;
  overlay_iter_out v id f

let base_in_off v = v.v_base.in_off
let base_in_cells v = v.v_base.in_cells
let base_out_off v = v.v_base.out_off
let base_out_cells v = v.v_base.out_cells
let base_n v = v.v_base.n

(* ------------------------------------------------------------------ *)
(* Packing                                                             *)
(* ------------------------------------------------------------------ *)

let pack_stream ~path ~n_nodes:n ~n_edges:m ~node_name ~labels ~iter_edges =
  if n < 0 || n > node_mask then invalid_arg "Disk_csr.pack_stream: node count out of range";
  if m < 0 then invalid_arg "Disk_csr.pack_stream: negative edge count";
  let nl = Array.length labels in
  if nl > max_labels then invalid_arg "Disk_csr.pack_stream: too many labels";
  let label_bytes = Array.fold_left (fun a s -> a + String.length s) 0 labels in
  let name_bytes = ref 0 in
  for v = 0 to n - 1 do
    name_bytes := !name_bytes + String.length (node_name v)
  done;
  let name_bytes = !name_bytes in
  let total = file_size n m nl ~label_bytes ~name_bytes in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (* Shared write mapping: map_file extends the file to the mapped
         size, and the fresh O_TRUNC file reads back as zeros, so the
         offset regions start out cleared. *)
      let chars =
        Bigarray.array1_of_genarray
          (Unix.map_file fd Bigarray.char Bigarray.c_layout true [| total |])
      in
      let ints =
        Bigarray.array1_of_genarray
          (Unix.map_file fd Bigarray.int Bigarray.c_layout true [| total / word |])
      in
      ints.{0} <- magic_word;
      ints.{1} <- format_version;
      ints.{2} <- n;
      ints.{3} <- m;
      ints.{4} <- nl;
      ints.{5} <- label_bytes;
      ints.{6} <- name_bytes;
      ints.{7} <- 0;
      let out_off = sub_ints ints (out_off_at n) (n + 1) in
      let in_off = sub_ints ints (in_off_at n) (n + 1) in
      let out_cells = sub_ints ints (out_cells_at n) m in
      let in_cells = sub_ints ints (in_cells_at n m) m in
      let label_off = sub_ints ints (label_off_at n m) (nl + 1) in
      let name_off = sub_ints ints (name_off_at n m nl) (n + 1) in
      let check ~src ~label ~dst =
        if src < 0 || src >= n || dst < 0 || dst >= n then
          invalid_arg (Printf.sprintf "Disk_csr.pack_stream: edge endpoint out of range (%d,%d)" src dst);
        if label < 0 || label >= nl then
          invalid_arg (Printf.sprintf "Disk_csr.pack_stream: label %d out of range" label)
      in
      (* Pass 1: degree counts, straight into the mapped offset cells. *)
      let seen = ref 0 in
      iter_edges (fun ~src ~label ~dst ->
          check ~src ~label ~dst;
          incr seen;
          if !seen > m then invalid_arg "Disk_csr.pack_stream: stream longer than n_edges";
          out_off.{src + 1} <- out_off.{src + 1} + 1;
          in_off.{dst + 1} <- in_off.{dst + 1} + 1);
      if !seen <> m then invalid_arg "Disk_csr.pack_stream: stream shorter than n_edges";
      for v = 1 to n do
        out_off.{v} <- out_off.{v} + out_off.{v - 1};
        in_off.{v} <- in_off.{v} + in_off.{v - 1}
      done;
      (* Pass 2: fill, using the offset cells themselves as cursors —
         off.{v} walks from start(v) to end(v) — then shift them back
         down one slot to restore the offsets. Zero O(n) heap. *)
      let seen = ref 0 in
      iter_edges (fun ~src ~label ~dst ->
          check ~src ~label ~dst;
          incr seen;
          if !seen > m then invalid_arg "Disk_csr.pack_stream: pass 2 stream longer than pass 1";
          let o = out_off.{src} in
          out_off.{src} <- o + 1;
          if o >= m then invalid_arg "Disk_csr.pack_stream: pass 2 stream disagrees with pass 1";
          out_cells.{o} <- (label lsl node_bits) lor dst;
          let i = in_off.{dst} in
          in_off.{dst} <- i + 1;
          if i >= m then invalid_arg "Disk_csr.pack_stream: pass 2 stream disagrees with pass 1";
          in_cells.{i} <- (label lsl node_bits) lor src);
      if !seen <> m then invalid_arg "Disk_csr.pack_stream: pass 2 stream shorter than pass 1";
      for v = n downto 1 do
        out_off.{v} <- out_off.{v - 1};
        in_off.{v} <- in_off.{v - 1}
      done;
      if n >= 1 then begin
        out_off.{0} <- 0;
        in_off.{0} <- 0
      end;
      (* String sections. *)
      let blob_at = ints_total n m nl * word in
      let cursor = ref blob_at in
      let emit s =
        String.iter
          (fun c ->
            chars.{!cursor} <- c;
            incr cursor)
          s
      in
      label_off.{0} <- 0;
      Array.iteri
        (fun l s ->
          emit s;
          label_off.{l + 1} <- !cursor - blob_at)
        labels;
      let name_base = !cursor in
      name_off.{0} <- 0;
      for v = 0 to n - 1 do
        emit (node_name v);
        name_off.{v + 1} <- !cursor - name_base
      done;
      (* Integrity trailer: CRC32 of the payload just written, read back
         through the shared mapping, then appended past it. *)
      let crc = Crc32.bigstring chars ~pos:0 ~len:total in
      let trailer = Bytes.create trailer_bytes in
      Bytes.blit_string trailer_magic 0 trailer 0 8;
      let u64_set off v =
        for i = 0 to 7 do
          Bytes.set trailer (off + i) (Char.chr ((v lsr (8 * i)) land 0xFF))
        done
      in
      u64_set 8 total;
      u64_set 16 crc;
      ignore (Unix.lseek fd total Unix.SEEK_SET);
      let off = ref 0 in
      while !off < trailer_bytes do
        off := !off + Unix.write fd trailer !off (trailer_bytes - !off)
      done;
      Unix.fsync fd)

let pack_digraph g ~path =
  let labels = Array.init (Digraph.n_labels g) (Digraph.label_name g) in
  pack_stream ~path ~n_nodes:(Digraph.n_nodes g) ~n_edges:(Digraph.n_edges g)
    ~node_name:(Digraph.node_name g) ~labels ~iter_edges:(fun f ->
      Digraph.iter_edges (fun e -> f ~src:e.Digraph.src ~label:e.Digraph.lbl ~dst:e.Digraph.dst) g)

let to_digraph v =
  let g = Digraph.create () in
  let total = n_nodes v in
  for id = 0 to total - 1 do
    ignore (Digraph.add_node g (node_name v id))
  done;
  for l = 0 to n_labels v - 1 do
    ignore (Digraph.intern_label g (label_name v l))
  done;
  for src = 0 to total - 1 do
    iter_out v src (fun lbl dst -> Digraph.add_edge g ~src ~label:(label_name v lbl) ~dst)
  done;
  g
