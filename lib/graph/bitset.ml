module A = Stdlib.Atomic

type t = { bits : Bytes.t; length : int }

let create length =
  if length < 0 then invalid_arg "Bitset.create: negative length";
  { bits = Bytes.make ((length + 7) lsr 3) '\000'; length }

let length t = t.length

let check t i name =
  if i < 0 || i >= t.length then
    invalid_arg (Printf.sprintf "Bitset.%s: index %d out of range [0, %d)" name i t.length)

let mem t i =
  check t i "mem";
  Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set t i =
  check t i "set";
  let byte = i lsr 3 in
  let cur = Char.code (Bytes.unsafe_get t.bits byte) in
  Bytes.unsafe_set t.bits byte (Char.unsafe_chr (cur lor (1 lsl (i land 7))))

let test_and_set t i =
  check t i "test_and_set";
  let byte = i lsr 3 in
  let bit = 1 lsl (i land 7) in
  let cur = Char.code (Bytes.unsafe_get t.bits byte) in
  if cur land bit <> 0 then false
  else begin
    Bytes.unsafe_set t.bits byte (Char.unsafe_chr (cur lor bit));
    true
  end

let clear t = Bytes.fill t.bits 0 (Bytes.length t.bits) '\000'

(* 8-bit popcount table: cardinal is a byte-table walk, not a per-bit loop. *)
let popcount8 =
  Array.init 256 (fun b ->
      let rec go b acc = if b = 0 then acc else go (b lsr 1) (acc + (b land 1)) in
      go b 0)

let cardinal t =
  let total = ref 0 in
  for i = 0 to Bytes.length t.bits - 1 do
    total := !total + popcount8.(Char.code (Bytes.unsafe_get t.bits i))
  done;
  !total

module Atomic = struct
  (* 32 bits per word: the bit shift stays well inside OCaml's 63-bit
     ints on every backend, and a word is one atomic cell. *)
  type t = { words : int A.t array; length : int }

  let create length =
    if length < 0 then invalid_arg "Bitset.Atomic.create: negative length";
    { words = Array.init ((length + 31) lsr 5) (fun _ -> A.make 0); length }

  let length t = t.length

  let check t i name =
    if i < 0 || i >= t.length then
      invalid_arg
        (Printf.sprintf "Bitset.Atomic.%s: index %d out of range [0, %d)" name i t.length)

  let mem t i =
    check t i "mem";
    A.get (Array.unsafe_get t.words (i lsr 5)) land (1 lsl (i land 31)) <> 0

  let test_and_set t i =
    check t i "test_and_set";
    let word = Array.unsafe_get t.words (i lsr 5) in
    let bit = 1 lsl (i land 31) in
    let rec loop () =
      let cur = A.get word in
      if cur land bit <> 0 then false
      else if A.compare_and_set word cur (cur lor bit) then true
      else loop ()
    in
    loop ()

  let clear t = Array.iter (fun w -> A.set w 0) t.words

  let cardinal t =
    let total = ref 0 in
    Array.iter
      (fun w ->
        let v = A.get w in
        total := !total + popcount8.(v land 0xff) + popcount8.((v lsr 8) land 0xff)
                 + popcount8.((v lsr 16) land 0xff) + popcount8.((v lsr 24) land 0xff))
      t.words;
    !total
end
