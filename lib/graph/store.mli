(** Durable graph storage: a checksummed append-only log with crash
    recovery.

    The interactive sessions mutate nothing, but a graph database worth
    the name must survive restarts. This store keeps the full graph in
    memory (as {!Digraph}) and appends every mutation to a write-ahead
    log. Two on-disk log formats coexist:

    - {e v2 (framed)} — the current format: a {!Wal} journal (magic
      ["GPSWAL01"], length+CRC32-framed records) whose payloads are the
      same text records as v1, minus the newline. Every record is
      checksummed, a torn tail is truncated on open, and a record whose
      CRC fails is {e detected} — never silently replayed.
    - {e v1 (text)} — the legacy format, one record per line:
      {v
      N <name>                 a node
      E <src> <label> <dst>    an edge (tab-separated fields)
      v}
      Old logs still replay (a torn final line is dropped, as before);
      the first {!compact} migrates the store to v2.

    The fsync policy (see {!Wal.fsync_policy}) decides when an
    acknowledged mutation is forced to disk — [Always] before every
    return, [Every n] in batches, [Never] leaving it to the page cache.
    It is honored for both formats.

    {!compact} moves the bulk out of the log: the whole graph is written
    as a packed binary CSR snapshot at [path ^ ".csr"] (see {!Disk_csr})
    and the log restarts empty (in v2 format). Recovery of a compacted
    store is one [mmap] + materialize plus a replay of only the short
    tail appended since. Both steps are crash-atomic: the temporary file
    is fsynced, renamed over the target, and the containing directory is
    fsynced after each rename — a crash at any point leaves either the
    old state or the new state, never neither.

    Names must not contain tabs or newlines
    ({!Invalid_argument} otherwise). *)

type t

type log_format = Text_v1 | Framed_v2

type recovery_info = {
  format : log_format;
  entries_replayed : int;  (** log records applied on open *)
  bytes_discarded : int;  (** torn/corrupt tail bytes truncated *)
  outcome : [ `Clean | `Torn_tail | `Corrupt_record ];
}

val openfile : ?policy:Wal.fsync_policy -> ?recover:bool -> string -> t
(** Open (replaying the log) or create the store at the path. A fresh
    store is created in v2 (framed) format; an existing log keeps its
    format until {!compact}. A torn tail (the crash-during-append case)
    is truncated silently — that is normal recovery. A record whose
    checksum fails is corruption: by default it raises [Failure] naming
    the record (run [gps store recover] to truncate); with
    [~recover:true] the log is truncated at the last valid record
    instead and the loss is reported in {!recovery}. Default policy
    [Always].
    @raise Failure on corruption (v2 CRC mismatch, v1 malformed line).
    @raise Sys_error on I/O errors. *)

val recovery : t -> recovery_info
(** What the open-time replay found. *)

val graph : t -> Digraph.t
(** The live graph. Treat as read-only: mutations must go through the
    store or they will not be persisted. *)

val path : t -> string
val format : t -> log_format
val policy : t -> Wal.fsync_policy

val add_node : t -> string -> Digraph.node
(** Idempotent, like {!Digraph.add_node}; only logs genuinely new
    nodes. Durable per the fsync policy when it returns. *)

val link : t -> string -> string -> string -> unit
(** [link t src label dst] — like {!Digraph.link}; only logs genuinely
    new nodes/edges. Durable per the fsync policy when it returns. *)

val sync : t -> unit
(** Force everything appended so far to disk (flush + fsync), regardless
    of policy. *)

val fsyncs : t -> int
(** Fsyncs issued by this handle since open. *)

val compact : t -> unit
(** Atomically write the packed binary snapshot to [path ^ ".csr"] and
    restart the log empty in v2 format — after this, the log carries
    only mutations newer than the snapshot. Crash-atomic as described
    above. *)

val close : t -> unit
(** Flush, fsync (unless policy is [Never]) and close; the store must
    not be used afterwards. *)

val verify : string -> (recovery_info, string) result
(** Read-only integrity check of the log at [path] (no snapshot, no
    graph build, no truncation): parse every record, report format,
    record count, tail outcome and bytes that recovery would discard.
    [Error] if the file cannot be read at all. *)
