(** Durable graph storage: an append-only log with crash recovery.

    The interactive sessions mutate nothing, but a graph database worth
    the name must survive restarts. This store keeps the full graph in
    memory (as {!Digraph}) and appends every mutation to a write-ahead
    text log, one record per line:
    {v
    N <name>                 a node
    E <src> <label> <dst>    an edge (tab-separated fields)
    v}
    On open, the log is replayed; a torn final record (no trailing
    newline — the crash case) is ignored, so a crash during append loses
    at most the in-flight record.

    {!compact} moves the bulk out of the text log: the whole graph is
    written as a packed binary CSR snapshot at [path ^ ".csr"] (see
    {!Disk_csr}) and the log truncates to empty. Recovery of a
    compacted store is one [mmap] + materialize plus a replay of only
    the short tail appended since — not a reparse of every record ever
    written. Both steps rename over a [.tmp]; a crash between them
    leaves snapshot + full old log, whose replay is idempotent.

    Names must not contain tabs or newlines
    ({!Invalid_argument} otherwise). *)

type t

val openfile : string -> t
(** Open (replaying the log) or create the store at the path.
    @raise Failure on a corrupt record that is not a torn tail.
    @raise Sys_error on I/O errors. *)

val graph : t -> Digraph.t
(** The live graph. Treat as read-only: mutations must go through the
    store or they will not be persisted. *)

val path : t -> string

val add_node : t -> string -> Digraph.node
(** Idempotent, like {!Digraph.add_node}; only logs genuinely new
    nodes. *)

val link : t -> string -> string -> string -> unit
(** [link t src label dst] — like {!Digraph.link}; only logs genuinely
    new nodes/edges. *)

val sync : t -> unit
(** Flush buffered appends to the OS. *)

val compact : t -> unit
(** Atomically write the packed binary snapshot to [path ^ ".csr"] and
    truncate the log — after this, the log carries only mutations newer
    than the snapshot. *)

val close : t -> unit
(** Flush and close; the store must not be used afterwards. *)
