(** Graph-database substrate: labeled directed multigraphs, traversal,
    walk/word enumeration, neighborhoods, serialization, statistics and
    synthetic workload generators. *)

module Vec = Vec
module Bitset = Bitset
module Symtab = Symtab
module Digraph = Digraph
module Traverse = Traverse
module Walks = Walks
module Neighborhood = Neighborhood
module Scc = Scc
module Prng = Prng
module Codec = Codec
module Json = Json
module Edit = Edit
module Reach = Reach
module Csr = Csr
module Crc32 = Crc32
module Wal = Wal
module Disk_csr = Disk_csr
module Store = Store
module Dot = Dot
module Rank = Rank
module Stats = Stats
module Generators = Generators
module Datasets = Datasets
