(** CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.

    The checksum behind every durable artifact in the system: WAL record
    frames ({!Wal}), the {!Store} mutation log, and the integrity
    trailer of packed {!Disk_csr} files. Returned as a non-negative
    [int] (the low 32 bits), so it stores directly in a word cell and
    prints as decimal without sign surprises. *)

val string : ?crc:int -> string -> int
(** Checksum a whole string, or continue from a running [crc] (start a
    stream with the default [0]). *)

val bytes : ?crc:int -> Bytes.t -> pos:int -> len:int -> int
(** Checksum a slice. @raise Invalid_argument on a bad range. *)

val bigstring :
  ?crc:int ->
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t ->
  pos:int ->
  len:int ->
  int
(** Checksum a slice of a mapped byte array — how {!Disk_csr} sums a
    packed file without copying it through the heap. *)
