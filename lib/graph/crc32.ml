(* CRC-32/ISO-HDLC: reflected polynomial 0xEDB88320, init and final xor
   0xFFFFFFFF — the zlib crc32. One 256-entry table, one lookup per
   byte. All arithmetic stays in the low 32 bits of an OCaml int. *)

let mask32 = 0xFFFFFFFF

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let step tbl crc byte = Array.unsafe_get tbl ((crc lxor byte) land 0xFF) lxor (crc lsr 8)

let finish crc = crc lxor mask32 land mask32
let start crc = crc lxor mask32 land mask32

let bytes ?(crc = 0) b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Crc32.bytes: slice out of range";
  let tbl = Lazy.force table in
  let c = ref (start crc) in
  for i = pos to pos + len - 1 do
    c := step tbl !c (Char.code (Bytes.unsafe_get b i))
  done;
  finish !c

let string ?(crc = 0) s = bytes ~crc (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

let bigstring ?(crc = 0) (a : (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t)
    ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bigarray.Array1.dim a then
    invalid_arg "Crc32.bigstring: slice out of range";
  let tbl = Lazy.force table in
  let c = ref (start crc) in
  for i = pos to pos + len - 1 do
    c := step tbl !c (Char.code (Bigarray.Array1.unsafe_get a i))
  done;
  finish !c
