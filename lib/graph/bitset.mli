(** Compact bit sets over dense integer ranges.

    The evaluation engine keeps one bit per product state — membership
    tables that were [bool array]s cost 8× the cache footprint of a
    packed bitset, and on the paper-scale graphs the packed table is the
    difference between staying cache-resident and not (see the
    [eval_scale] benchmark).

    Two representations share the interface shape:

    - {!t} packs 8 bits per byte into [Bytes]. It is the sequential
      workhorse: single-threaded use only, no synchronization cost.
    - {!Atomic} packs 32 bits per [int Atomic.t] word and offers a
      lock-free {!Atomic.test_and_set} (a compare-and-set retry loop),
      so concurrent writers from a {!Gps_par.Pool} can claim bits
      race-free. *)

type t

val create : int -> t
(** [create n] is a set over indices [0 .. n-1], initially empty.
    @raise Invalid_argument if [n < 0]. *)

val length : t -> int

val mem : t -> int -> bool
(** @raise Invalid_argument if the index is out of range (all ops). *)

val set : t -> int -> unit

val test_and_set : t -> int -> bool
(** [test_and_set b i] sets bit [i] and returns whether it was newly set
    ([false] if it was already present). Not thread-safe — this is the
    sequential kernel's dedup primitive. *)

val clear : t -> unit
(** Reset every bit to 0 (the backing store is reused). *)

val cardinal : t -> int
(** Number of set bits. *)

(** Word-packed bitset with a lock-free test-and-set. Memory ordering:
    a successful [test_and_set] is an [Atomic.compare_and_set], so bits
    published by one domain are visible to any domain that subsequently
    synchronizes (e.g. through {!Gps_par.Pool.run} completion). *)
module Atomic : sig
  type t

  val create : int -> t
  val length : t -> int
  val mem : t -> int -> bool

  val test_and_set : t -> int -> bool
  (** Atomically sets bit [i]; [true] iff this caller set it (exactly one
      of any number of racing callers wins). *)

  val clear : t -> unit
  (** Not atomic as a whole — callers must quiesce writers first. *)

  val cardinal : t -> int
end
