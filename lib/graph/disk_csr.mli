(** Out-of-core graphs: an mmap-backed binary CSR store with an in-heap
    delta overlay.

    {!Csr} freezes a heap {!Digraph} into int arrays; this module takes
    the same layout to disk. A packed graph is a single binary file
    (magic ["GPSCSR01"], fixed word-cell header, offset and packed-edge
    cell sections, then name/label string blobs) that the server maps
    read-only with [Unix.map_file] — loading a million-node graph costs
    one [mmap], not a parse, and the kernel pages only the adjacency it
    actually touches. Query evaluation reads the mapped cells through
    {!Bigarray.Array1} exactly like the heap CSR reads its int arrays.

    {2 File format (version 1)}

    All word cells are 8-byte native ints written on a little-endian
    host. Layout, in order:

    - cells 0–7: header — magic ["GPSCSR01"] (as one word), format
      version, n_nodes, n_edges, n_labels, label-blob bytes, name-blob
      bytes, reserved 0;
    - [out_off]: n_nodes+1 word cells of out-edge offsets;
    - [in_off]: n_nodes+1 word cells of in-edge offsets;
    - [out_cells]: n_edges packed cells [(label lsl 40) lor target];
    - [in_cells]: n_edges packed cells [(label lsl 40) lor source];
    - [label_off]: n_labels+1 byte offsets into the label blob;
    - [name_off]: n_nodes+1 byte offsets into the name blob;
    - label blob, then name blob (raw UTF-8 bytes), zero-padded to a
      word boundary.

    The packed-cell split caps graphs at 2{^40} nodes and 2{^22} labels
    — far above anything the rest of the system handles. The magic word
    doubles as an endianness probe: if the bytes spell the magic but the
    word read differs, the file was written on a foreign byte order.

    {2 Delta overlay}

    A mapped file is immutable; streamed ingest ([{"op":"add_edges"}])
    lands in an immutable in-heap overlay (persistent maps keyed by
    node) swapped atomically, so readers take a lock-free {!snapshot}
    while one writer at a time extends it. New node and label names
    intern past the base ids. Edge set semantics match {!Digraph}:
    re-adding a triple (base or overlay) is a no-op. *)

type int_arr = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

(** {1 Opening} *)

type open_error =
  | No_such_file of string
  | Not_regular of string
  | Bad_magic
  | Bad_endianness
  | Bad_version of int  (** the version the file declares *)
  | Truncated of { expected : int; actual : int }  (** byte sizes *)
  | Corrupted of string  (** header/offset invariant broken *)

val pp_open_error : Format.formatter -> open_error -> unit
val open_error_to_string : open_error -> string

type t
(** A mapped base file plus its mutable overlay. Thread-safe: any number
    of readers via {!snapshot}, writers serialized internally. *)

val open_map : string -> (t, open_error) result
(** Map the packed file at the path read-only ([MAP_PRIVATE]); the base
    is validated (magic, version, size, offset endpoints) before any
    adjacency is trusted. The overlay starts empty. *)

val path : t -> string

(** {1 Base-file facts (overlay excluded)} *)

val base_nodes : t -> int
val base_edges : t -> int
val base_labels : t -> int
val file_bytes : t -> int

(** {1 Integrity}

    Files written since the durability work carry a 24-byte trailer past
    the payload: magic ["GPSCKSUM"], u64 LE payload length, u64 LE CRC32
    of the payload. {!open_map} records the trailer but does not sum a
    possibly-multi-GB mapping on every open; {!verify} does the full
    pass on demand. Pre-trailer files open fine and report
    {!No_trailer}. *)

type verify_result =
  | Verified of { crc : int; bytes : int }
  | No_trailer  (** packed before checksum trailers existed *)
  | Crc_mismatch of { stored : int; computed : int }

val verify : t -> verify_result
(** Recompute the payload CRC32 and compare with the trailer. Reads
    every payload byte — O(file size). *)

val has_trailer : t -> bool

(** {1 Overlay mutation} *)

type delta = {
  added : int;  (** edges actually added (duplicates skipped) *)
  new_nodes : int;  (** node names interned by this batch *)
  labels : string list;  (** distinct labels of the added edges, sorted *)
}

val add_edges : t -> (string * string * string) list -> delta
(** [(src, label, dst)] triples by name; unknown names intern as new
    overlay nodes/labels. Returns the summary the cache needs for
    label-aware invalidation. *)

val overlay_edges : t -> int

(** {1 Snapshots} *)

type view
(** An immutable instant: the mapped base plus the overlay as of
    {!snapshot} time. Safe to evaluate against while writers proceed. *)

val snapshot : t -> view

val n_nodes : view -> int
val n_edges : view -> int
val n_labels : view -> int
val view_overlay_edges : view -> int
val overlay_is_empty : view -> bool

val node_name : view -> int -> string
val label_name : view -> int -> string
val label_of_name : view -> string -> int option

val iter_in : view -> int -> (int -> int -> unit) -> unit
(** Iterate [(label, source)] over in-edges, base then overlay. *)

val iter_out : view -> int -> (int -> int -> unit) -> unit
(** Iterate [(label, destination)] over out-edges, base then overlay. *)

(** {1 Zero-copy access for the eval kernel}

    The base adjacency of a view as raw mapped arrays, so the product-BFS
    kernel instantiated for mapped graphs touches exactly the same shape
    of memory as the heap-CSR kernel: an offset probe plus a packed-cell
    scan per node, no per-edge dispatch. *)

val base_in_off : view -> int_arr
val base_in_cells : view -> int_arr
val base_out_off : view -> int_arr
val base_out_cells : view -> int_arr
val base_n : view -> int
(** Nodes of the base file; views with overlay nodes extend past this. *)

val cell_label : int -> int
val cell_node : int -> int
(** Decode a packed cell: [cell_label c = c lsr 40],
    [cell_node c = c land (2{^40}-1)]. *)

val node_bits : int
val node_mask : int
(** The split constants themselves, for callers that inline the decode
    into a hot loop instead of paying a call per edge. *)

val overlay_iter_in : view -> int -> (int -> int -> unit) -> unit
(** Overlay in-edges only — what {!iter_in} adds on top of the base. *)

(** {1 Packing} *)

val pack_stream :
  path:string ->
  n_nodes:int ->
  n_edges:int ->
  node_name:(int -> string) ->
  labels:string array ->
  iter_edges:((src:int -> label:int -> dst:int -> unit) -> unit) ->
  unit
(** Write a packed file without materializing the graph in the heap:
    [iter_edges] is invoked exactly twice (degree count, then fill) and
    must replay the identical stream of exactly [n_edges] edges both
    times — recreate any PRNG from its seed per pass. Edges land in the
    file through a shared write mapping; the only O(n) state is the
    file's own mapped pages. [label] is an index into [labels];
    duplicate triples are kept as-is (packing a {!Digraph} never
    produces them, streamed generators may — selection semantics are
    unaffected).
    @raise Invalid_argument on out-of-range ids or a stream that does
    not replay identically. *)

val pack_digraph : Digraph.t -> path:string -> unit
(** Pack a heap graph; node/label ids and adjacency are preserved
    exactly, so a reopened file evaluates identically to
    [Csr.freeze g]. *)

val to_digraph : view -> Digraph.t
(** Materialize (base + overlay) as a heap graph with identical node and
    label ids — the lazy path for endpoints that need full [Digraph]
    access (sessions, learning). *)
