type t = {
  n_nodes : int;
  n_edges : int;
  n_labels : int;
  avg_out_degree : float;
  max_out_degree : int;
  max_in_degree : int;
  n_sources : int;
  n_sinks : int;
  n_sccs : int;
  largest_scc : int;
  label_histogram : (string * int) list;
  eccentricity_sample : int;
}

let compute ?(sample = 32) g =
  let n = Digraph.n_nodes g in
  let m = Digraph.n_edges g in
  let max_out = Digraph.fold_nodes (fun acc v -> max acc (Digraph.out_degree g v)) 0 g in
  let max_in = Digraph.fold_nodes (fun acc v -> max acc (Digraph.in_degree g v)) 0 g in
  let n_sources =
    Digraph.fold_nodes (fun acc v -> if Digraph.in_degree g v = 0 then acc + 1 else acc) 0 g
  in
  let n_sinks =
    Digraph.fold_nodes (fun acc v -> if Digraph.out_degree g v = 0 then acc + 1 else acc) 0 g
  in
  let scc = Scc.compute g in
  let label_histogram = Rank.labels_by_frequency g in
  let ecc =
    if n = 0 then 0
    else begin
      let stride = max 1 (n / sample) in
      let best = ref 0 in
      let v = ref 0 in
      while !v < n do
        best := max !best (Traverse.eccentricity g !v);
        v := !v + stride
      done;
      !best
    end
  in
  {
    n_nodes = n;
    n_edges = m;
    n_labels = Digraph.n_labels g;
    avg_out_degree = (if n = 0 then 0.0 else float_of_int m /. float_of_int n);
    max_out_degree = max_out;
    max_in_degree = max_in;
    n_sources;
    n_sinks;
    n_sccs = scc.Scc.count;
    largest_scc = Scc.largest scc;
    label_histogram;
    eccentricity_sample = ecc;
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>nodes: %d@,edges: %d@,labels: %d@,avg out-degree: %.2f@,max out-degree: %d@,\
     max in-degree: %d@,sources: %d@,sinks: %d@,SCCs: %d (largest %d)@,eccentricity (sampled): %d@,\
     label histogram:"
    t.n_nodes t.n_edges t.n_labels t.avg_out_degree t.max_out_degree t.max_in_degree t.n_sources
    t.n_sinks t.n_sccs t.largest_scc t.eccentricity_sample;
  List.iter (fun (l, c) -> Format.fprintf ppf "@,  %-12s %d" l c) t.label_histogram;
  Format.fprintf ppf "@]"
