(* Checksummed append-only journal. See wal.mli for the file format and
   recovery contract. The writer works on a raw Unix fd so that fsync
   actually covers every byte written (no stdlib channel buffering in
   the durability path). *)

let magic = "GPSWAL01"
let magic_len = String.length magic
let header_bytes = 8 (* u32 length + u32 crc *)
let max_record_bytes = 64 * 1024 * 1024

type fsync_policy = Never | Every of int | Always

let policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "never" -> Ok Never
  | "always" -> Ok Always
  | s -> (
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "every" -> (
          let n = String.sub s (i + 1) (String.length s - i - 1) in
          match int_of_string_opt n with
          | Some n when n >= 1 -> Ok (Every n)
          | _ -> Error (Printf.sprintf "bad fsync interval %S (want every:N, N>=1)" n))
      | _ -> Error (Printf.sprintf "unknown fsync policy %S (never|every:N|always)" s))

let policy_to_string = function
  | Never -> "never"
  | Always -> "always"
  | Every n -> Printf.sprintf "every:%d" n

type outcome =
  | Clean
  | Torn_tail of { bytes_discarded : int }
  | Corrupt_record of { index : int; bytes_discarded : int }

type recovery = { entries : string list; outcome : outcome; valid_bytes : int }

let bytes_discarded r =
  match r.outcome with
  | Clean -> 0
  | Torn_tail { bytes_discarded } | Corrupt_record { bytes_discarded; _ } ->
      bytes_discarded

(* Fault probe: the obs layer (which sits above us) installs Fault.trip
   here so GPS_FAULT schedules can hit wal.append / store.fsync. *)
let probe = ref (fun (_ : string) -> ())
let set_probe f = probe := f

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd

let u32_get b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let u32_set b off v =
  Bytes.set b off (Char.chr (v land 0xFF));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b (off + 2) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set b (off + 3) (Char.chr ((v lsr 24) land 0xFF))

(* Scan the framed region of [b] starting after the magic. *)
let scan_bytes b =
  let size = Bytes.length b in
  let rec loop pos index acc =
    if pos = size then
      { entries = List.rev acc; outcome = Clean; valid_bytes = pos }
    else if size - pos < header_bytes then
      (* crash mid-header *)
      {
        entries = List.rev acc;
        outcome = Torn_tail { bytes_discarded = size - pos };
        valid_bytes = pos;
      }
    else
      let len = u32_get b pos in
      let crc = u32_get b (pos + 4) in
      if len > max_record_bytes then
        (* An absurd length field is corruption, not a torn write: we
           refuse to trust it enough even to classify the tail. *)
        {
          entries = List.rev acc;
          outcome = Corrupt_record { index; bytes_discarded = size - pos };
          valid_bytes = pos;
        }
      else if size - pos - header_bytes < len then
        {
          entries = List.rev acc;
          outcome = Torn_tail { bytes_discarded = size - pos };
          valid_bytes = pos;
        }
      else if Crc32.bytes b ~pos:(pos + header_bytes) ~len <> crc then
        {
          entries = List.rev acc;
          outcome = Corrupt_record { index; bytes_discarded = size - pos };
          valid_bytes = pos;
        }
      else
        let payload = Bytes.sub_string b (pos + header_bytes) len in
        loop (pos + header_bytes + len) (index + 1) (payload :: acc)
  in
  loop 0 0 []

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let size = in_channel_length ic in
      let b = Bytes.create size in
      really_input ic b 0 size;
      b)

let scan path =
  if not (Sys.file_exists path) then
    Ok { entries = []; outcome = Clean; valid_bytes = 0 }
  else
    match read_file path with
    | exception Sys_error e -> Error e
    | b ->
        let size = Bytes.length b in
        if size = 0 then Ok { entries = []; outcome = Clean; valid_bytes = 0 }
        else if size < magic_len then
          if Bytes.sub_string b 0 size = String.sub magic 0 size then
            (* crash while writing the magic itself: an empty log *)
            Ok
              {
                entries = [];
                outcome = Torn_tail { bytes_discarded = size };
                valid_bytes = 0;
              }
          else Error (Printf.sprintf "%s: not a WAL file (bad magic)" path)
        else if Bytes.sub_string b 0 magic_len <> magic then
          Error (Printf.sprintf "%s: not a WAL file (bad magic)" path)
        else
          let body = Bytes.sub b magic_len (size - magic_len) in
          let r = scan_bytes body in
          Ok { r with valid_bytes = r.valid_bytes + magic_len }

type t = {
  w_path : string;
  w_policy : fsync_policy;
  mutable fd : Unix.file_descr option;
  mutable n_appends : int;
  mutable n_fsyncs : int;
  mutable unsynced : int; (* appends since last fsync, for Every *)
}

let path t = t.w_path
let policy t = t.w_policy
let appends t = t.n_appends
let fsyncs t = t.n_fsyncs

let fd_exn t =
  match t.fd with
  | Some fd -> fd
  | None -> invalid_arg "Wal: handle is closed"

let write_all fd b =
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

let do_fsync t =
  !probe "store.fsync";
  Unix.fsync (fd_exn t);
  t.n_fsyncs <- t.n_fsyncs + 1;
  t.unsynced <- 0

let open_append ?(policy = Always) path =
  match scan path with
  | Error _ as e -> e
  | Ok recovery -> (
      try
        let fresh = recovery.valid_bytes = 0 in
        let fd =
          Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ] 0o644
        in
        (* Physically drop any torn/corrupt tail so the next append
           starts at the end of valid history. *)
        if fresh then (
          Unix.ftruncate fd 0;
          let m = Bytes.of_string magic in
          write_all fd m)
        else (
          Unix.ftruncate fd recovery.valid_bytes;
          ignore (Unix.lseek fd recovery.valid_bytes Unix.SEEK_SET));
        (match policy with
        | Never -> ()
        | Every _ | Always ->
            (try Unix.fsync fd with Unix.Unix_error _ -> ());
            if fresh then fsync_dir (Filename.dirname path));
        let t =
          {
            w_path = path;
            w_policy = policy;
            fd = Some fd;
            n_appends = 0;
            n_fsyncs = 0;
            unsynced = 0;
          }
        in
        let recovery =
          if fresh then { recovery with valid_bytes = magic_len } else recovery
        in
        Ok (t, recovery)
      with Unix.Unix_error (e, _, _) ->
        Error (Printf.sprintf "%s: %s" path (Unix.error_message e)))

let append t payload =
  let len = String.length payload in
  if len > max_record_bytes then
    invalid_arg "Wal.append: record exceeds max_record_bytes";
  let fd = fd_exn t in
  !probe "wal.append";
  let frame = Bytes.create (header_bytes + len) in
  u32_set frame 0 len;
  u32_set frame 4 (Crc32.string payload);
  Bytes.blit_string payload 0 frame header_bytes len;
  write_all fd frame;
  t.n_appends <- t.n_appends + 1;
  t.unsynced <- t.unsynced + 1;
  match t.w_policy with
  | Always -> do_fsync t
  | Every n -> if t.unsynced >= n then do_fsync t
  | Never -> ()

let sync t = do_fsync t

let close t =
  match t.fd with
  | None -> ()
  | Some fd ->
      (match t.w_policy with
      | Never -> ()
      | Every _ | Always -> (
          if t.unsynced > 0 then
            try do_fsync t with Unix.Unix_error _ -> () | _ -> ()));
      t.fd <- None;
      Unix.close fd
