module Digraph = Gps_graph.Digraph
module Iset = Set.Make (Int)
module Counter = Gps_obs.Counter
module Trace = Gps_obs.Trace

type outcome = Found of string list | Uninformative | Timeout

let c_searches = Counter.make "witness.searches"
let c_expansions = Counter.make "witness.expansions"
let c_timeouts = Counter.make "witness.timeouts"

(* Subset step: image of a frontier under one label. *)
let step g frontier lbl =
  Iset.fold
    (fun u acc ->
      List.fold_left (fun acc d -> Iset.add d acc) acc (Digraph.succ_by_label g u lbl))
    frontier Iset.empty

(* Labels available from a frontier. *)
let out_labels g frontier =
  Iset.fold
    (fun u acc ->
      List.fold_left (fun acc (l, _) -> Iset.add l acc) acc (Digraph.out_edges g u))
    frontier Iset.empty

let search g ?(fuel = 100_000) ?max_len v ~negatives =
  Trace.with_span "witness.search" @@ fun sp ->
  let seen = Hashtbl.create 256 in
  let q = Queue.create () in
  let init = (Iset.singleton v, Iset.of_list negatives) in
  Hashtbl.add seen init ();
  Queue.add (init, []) q;
  let remaining = ref fuel in
  let rec go () =
    if Queue.is_empty q then Uninformative
    else if !remaining <= 0 then Timeout
    else begin
      decr remaining;
      let (sv, sn), rev_word = Queue.pop q in
      if Iset.is_empty sn then
        Found (List.rev_map (Digraph.label_name g) rev_word)
      else begin
        let depth_ok =
          match max_len with None -> true | Some k -> List.length rev_word < k
        in
        if depth_ok then
          Iset.iter
            (fun lbl ->
              let sv' = step g sv lbl in
              if not (Iset.is_empty sv') then begin
                let key = (sv', step g sn lbl) in
                if not (Hashtbl.mem seen key) then begin
                  Hashtbl.add seen key ();
                  Queue.add (key, lbl :: rev_word) q
                end
              end)
            (out_labels g sv);
        go ()
      end
    end
  in
  (* ε is a path of every node, so with at least one negative the initial
     pair has S_N ≠ ∅ and the search proceeds; with none, ε is returned
     immediately (any query selecting everything is consistent so far). *)
  let outcome = go () in
  let expansions = fuel - !remaining in
  Counter.incr c_searches;
  Counter.add c_expansions expansions;
  if outcome = Timeout then Counter.incr c_timeouts;
  Trace.set_int sp "expansions" expansions;
  Trace.set_str sp "outcome"
    (match outcome with Found _ -> "found" | Uninformative -> "uninformative" | Timeout -> "timeout");
  outcome

let count_uncovered g v ~negatives ~max_len =
  (* Enumerate distinct words breadth-first (pair states keyed by the word,
     not the pair, since distinct words with equal pairs still count
     separately — the paper counts paths). *)
  let neg0 = Iset.of_list negatives in
  let q = Queue.create () in
  Queue.add (Iset.singleton v, neg0, 0) q;
  let count = ref 0 in
  while not (Queue.is_empty q) do
    let sv, sn, len = Queue.pop q in
    if len > 0 && Iset.is_empty sn then incr count;
    if len < max_len then
      Iset.iter
        (fun lbl ->
          let sv' = step g sv lbl in
          if not (Iset.is_empty sv') then Queue.add (sv', step g sn lbl, len + 1) q)
        (out_labels g sv)
  done;
  !count
