module Nfa = Gps_automata.Nfa
module Pta = Gps_automata.Pta
module Counter = Gps_obs.Counter
module Trace = Gps_obs.Trace

let attempted = ref 0
let merge_count () = !attempted

let c_attempts = Counter.make "rpni.merge_attempts"
let c_accepts = Counter.make "rpni.merge_accepts"
let c_rejects = Counter.make "rpni.merge_rejects"
let c_promotions = Counter.make "rpni.promotions"
let c_checks = Counter.make "rpni.consistency_checks"

(* Union-find without path compression so that rollback is a plain array
   copy. PTAs here are small (tens of states). *)
let rec find parent i = if parent.(i) = i then i else find parent parent.(i)

(* Deterministic closure: after a union, two member states of one block may
   leave on the same symbol towards different blocks; such target blocks
   must be merged too (fold), repeatedly. *)
let close parent trans =
  let rec pass () =
    let seen = Hashtbl.create 64 in
    let pending = ref None in
    List.iter
      (fun (s, sym, d) ->
        if !pending = None then begin
          let rs = find parent s and rd = find parent d in
          match Hashtbl.find_opt seen (rs, sym) with
          | None -> Hashtbl.add seen (rs, sym) rd
          | Some rd' -> if rd <> rd' then pending := Some (rd, rd')
        end)
      trans;
    match !pending with
    | None -> ()
    | Some (a, b) ->
        parent.(b) <- a;
        pass ()
  in
  pass ()

let quotient_of parent nfa =
  let n = Nfa.n_states nfa in
  (* dense block ids in order of first occurrence *)
  let block = Array.make n (-1) in
  let next = ref 0 in
  let partition =
    Array.init n (fun s ->
        let r = find parent s in
        if block.(r) = -1 then begin
          block.(r) <- !next;
          incr next
        end;
        block.(r))
  in
  Nfa.quotient nfa ~partition

let generalize pta ~consistent =
  Trace.with_span "rpni.generalize" @@ fun sp ->
  attempted := 0;
  let accepts = ref 0 and promotions = ref 0 and checks = ref 0 in
  let consistent nfa =
    incr checks;
    consistent nfa
  in
  let nfa = pta.Pta.nfa in
  let n = Nfa.n_states nfa in
  let trans = Nfa.transitions nfa in
  if not (consistent nfa) then begin
    Counter.incr c_checks;
    invalid_arg "Rpni.generalize: the sample itself is inconsistent (a witness word is covered)"
  end;
  let parent = Array.init n Fun.id in
  let red = ref [ 0 ] in
  for q = 1 to n - 1 do
    if find parent q = q then begin
      (* q is still the root of an unmerged block: a blue state. *)
      let rec try_reds = function
        | [] ->
            (* promote: q becomes red *)
            incr promotions;
            red := !red @ [ q ]
        | r :: rest ->
            incr attempted;
            let candidate = Array.copy parent in
            candidate.(q) <- find candidate r;
            close candidate trans;
            if consistent (quotient_of candidate nfa) then begin
              incr accepts;
              Array.blit candidate 0 parent 0 n
            end
            else try_reds rest
      in
      try_reds !red
    end
  done;
  Counter.add c_attempts !attempted;
  Counter.add c_accepts !accepts;
  Counter.add c_rejects (!attempted - !accepts);
  Counter.add c_promotions !promotions;
  Counter.add c_checks !checks;
  Trace.set_int sp "pta_states" n;
  Trace.set_int sp "merge_attempts" !attempted;
  Trace.set_int sp "merge_accepts" !accepts;
  Trace.set_int sp "promotions" !promotions;
  Trace.set_int sp "consistency_checks" !checks;
  Nfa.trim (quotient_of parent nfa)

let generalize_words pta ~neg_words =
  let consistent nfa = not (List.exists (fun w -> Nfa.accepts nfa w) neg_words) in
  generalize pta ~consistent
