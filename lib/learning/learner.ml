module Digraph = Gps_graph.Digraph
module Pta = Gps_automata.Pta
module Rpq = Gps_query.Rpq
module Eval = Gps_query.Eval
module Pathlang = Gps_query.Pathlang
module Counter = Gps_obs.Counter
module Trace = Gps_obs.Trace
module Deadline = Gps_obs.Deadline

let c_runs = Counter.make "learner.runs"
let c_failures = Counter.make "learner.failures"

type failure =
  | Conflicting_node of Digraph.node
  | Covered_witness of Digraph.node * string list
  | Budget_exhausted of Digraph.node
  | Interrupted of Deadline.reason

type result = Learned of Rpq.t | Failed of failure

let witness_words ?fuel ?max_len ?(deadline = Deadline.none) g sample =
  let negatives = Sample.neg sample in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | v :: rest -> (
        (* a deadline poll per positive node bounds the whole step even
           though each per-node pair-BFS is already fuel-bounded *)
        match Deadline.check deadline with
        | Some r -> Error (Interrupted r)
        | None -> (
            match Sample.validated sample v with
            | Some word ->
                if Pathlang.covers g negatives word then Error (Covered_witness (v, word))
                else go (word :: acc) rest
            | None -> (
                match Witness_search.search g ?fuel ?max_len v ~negatives with
                | Witness_search.Found word -> go (word :: acc) rest
                | Witness_search.Uninformative -> Error (Conflicting_node v)
                | Witness_search.Timeout -> Error (Budget_exhausted v))))
  in
  go [] (Sample.pos sample)

(* Aborts the RPNI merge loop from inside its consistency oracle — the
   only channel out of [Rpni.generalize]'s higher-order interface. *)
exception Interrupted_exn of Deadline.reason

let learn_result ?fuel ?max_len ?(deadline = Deadline.none) g sample =
  match Sample.pos sample with
  | [] ->
      (* Nothing must be selected: the empty query is consistent with any
         set of negatives. *)
      Learned (Rpq.of_regex Gps_regex.Regex.empty)
  | _ -> (
      match witness_words ?fuel ?max_len ~deadline g sample with
      | Error f -> Failed f
      | Ok words -> (
          let pta = Pta.build words in
          let negatives = Sample.neg sample in
          (* One frozen snapshot for the whole generalization: each
             candidate automaton costs a single shared-kernel evaluation
             checked against every negative at once, instead of one full
             product BFS per negative node. *)
          let csr = Gps_graph.Csr.freeze g in
          let consistent nfa =
            negatives = []
            ||
            let q = Rpq.of_nfa nfa in
            match Eval.select_frozen_result ~deadline g csr q with
            | Ok sel -> not (List.exists (fun n -> sel.(n)) negatives)
            | Error { Eval.reason; _ } -> raise (Interrupted_exn reason)
          in
          match Rpni.generalize pta ~consistent with
          | nfa -> Learned (Rpq.of_nfa nfa)
          | exception Interrupted_exn r -> Failed (Interrupted r)))

let learn ?fuel ?max_len ?deadline g sample =
  Trace.with_span "learner.learn" @@ fun sp ->
  Counter.incr c_runs;
  Trace.set_int sp "pos" (List.length (Sample.pos sample));
  Trace.set_int sp "neg" (List.length (Sample.neg sample));
  let result = learn_result ?fuel ?max_len ?deadline g sample in
  (match result with
  | Learned _ -> Trace.set_str sp "result" "learned"
  | Failed _ ->
      Counter.incr c_failures;
      Trace.set_str sp "result" "failed");
  result

let pp_failure g ppf = function
  | Conflicting_node v ->
      Format.fprintf ppf
        "node %s is labeled positive but every path it has is covered by a negative node"
        (Digraph.node_name g v)
  | Covered_witness (v, w) ->
      Format.fprintf ppf "the validated path %s of node %s is covered by a negative node"
        (String.concat "." w) (Digraph.node_name g v)
  | Budget_exhausted v ->
      Format.fprintf ppf "witness search budget exhausted on node %s" (Digraph.node_name g v)
  | Interrupted r ->
      Format.fprintf ppf "learning was interrupted (%s) before completing"
        (Deadline.reason_to_string r)

let learn_exn ?fuel ?max_len g sample =
  match learn ?fuel ?max_len g sample with
  | Learned q -> q
  | Failed f -> failwith (Format.asprintf "Learner.learn_exn: %a" (pp_failure g) f)
