(** The end-to-end learning algorithm of the paper (Section 2):

    (i) for each positive node, obtain a path not covered by any negative
    node — the user-validated path of interest when available, otherwise a
    shortest one found by {!Witness_search};

    (ii) build the prefix-tree acceptor of those paths and generalize it by
    state merging ({!Rpni}) while no negative node is selected.

    The output is either a query consistent with every label, or a
    diagnosis of why none exists / none was found cheaply — mirroring the
    paper's "outputs in polynomial time either a query [...] or instead
    the next node to label if such a query cannot be constructed
    efficiently". *)

type failure =
  | Conflicting_node of Gps_graph.Digraph.node
      (** positive, but all its paths are covered by negatives: no
          consistent query exists *)
  | Covered_witness of Gps_graph.Digraph.node * string list
      (** the user-validated path of this positive node is covered by a
          negative — the labeling is contradictory *)
  | Budget_exhausted of Gps_graph.Digraph.node
      (** witness search ran out of fuel on this node before deciding *)
  | Interrupted of Gps_obs.Deadline.reason
      (** the caller's deadline or cancel token fired mid-learn — during
          witness search or inside the consistency oracle's product BFS *)

type result = Learned of Gps_query.Rpq.t | Failed of failure

val witness_words :
  ?fuel:int ->
  ?max_len:int ->
  ?deadline:Gps_obs.Deadline.t ->
  Gps_graph.Digraph.t ->
  Sample.t ->
  (string list list, failure) Stdlib.result
(** Step (i) alone: one uncovered word per positive node, in node order
    (validated paths taken as-is after a coverage check). Shared by the
    baseline learners so ablations isolate step (ii). *)

val learn :
  ?fuel:int ->
  ?max_len:int ->
  ?deadline:Gps_obs.Deadline.t ->
  Gps_graph.Digraph.t ->
  Sample.t ->
  result
(** [max_len] bounds witness length (default: unbounded — exact);
    [fuel] bounds the pair-BFS (default 100_000). An empty-positive sample
    learns [∅] (selects nothing), which is consistent with any negatives.
    [deadline] bounds the whole run cooperatively — polled once per
    positive node during witness search and threaded into every
    consistency-oracle evaluation; when it fires the result is
    [Failed (Interrupted _)]. *)

val learn_exn : ?fuel:int -> ?max_len:int -> Gps_graph.Digraph.t -> Sample.t -> Gps_query.Rpq.t
(** @raise Failure with a readable message on any {!failure}. *)

val pp_failure : Gps_graph.Digraph.t -> Format.formatter -> failure -> unit
