(* Prometheus text exposition. One buffer pass, no dependencies: the
   format is lines of `name{labels} value` grouped under `# TYPE`
   headers, with histogram families expanded into cumulative buckets. *)

let sanitize name =
  String.map
    (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':') as c -> c | _ -> '_')
    name

let metric_name ?(suffix = "") name = "gps_" ^ sanitize name ^ suffix

(* label values: escape backslash, double-quote and newline *)
let escape_label_value v =
  let b = Buffer.create (String.length v) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let label_pairs labels =
  List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" (sanitize k) (escape_label_value v)) labels

let labels_str labels =
  match labels with [] -> "" | l -> "{" ^ String.concat "," (label_pairs l) ^ "}"

(* integers print without an exponent; floats in shortest round-trip form *)
let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let render_counters counters buf =
  List.iter
    (fun (name, v) ->
      let m = metric_name ~suffix:"_total" name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n%s %d\n" m m v))
    counters

let render_gauges gauges buf =
  List.iter
    (fun (name, v) ->
      let m = metric_name name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n%s %s\n" m m (float_str v)))
    gauges

(* histogram series sharing a name form one family: TYPE line once,
   then per-label-set cumulative buckets + sum + count *)
let render_histograms snaps buf =
  let families = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (s : Histogram.snapshot) ->
      match Hashtbl.find_opt families s.Histogram.hname with
      | Some l -> Hashtbl.replace families s.Histogram.hname (s :: l)
      | None ->
          Hashtbl.replace families s.Histogram.hname [ s ];
          order := s.Histogram.hname :: !order)
    snaps;
  List.iter
    (fun fname ->
      let m = metric_name fname in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" m);
      List.iter
        (fun (s : Histogram.snapshot) ->
          let base = label_pairs s.Histogram.hlabels in
          let bucket_line le cum =
            let labels = String.concat "," (base @ [ Printf.sprintf "le=\"%s\"" le ]) in
            Buffer.add_string buf (Printf.sprintf "%s_bucket{%s} %d\n" m labels cum)
          in
          let cum = ref 0 in
          List.iter
            (fun (i, c) ->
              cum := !cum + c;
              bucket_line (string_of_int (Histogram.bucket_upper i)) !cum)
            s.Histogram.buckets;
          bucket_line "+Inf" s.Histogram.count;
          let ls = labels_str s.Histogram.hlabels in
          Buffer.add_string buf (Printf.sprintf "%s_sum%s %d\n" m ls s.Histogram.sum);
          Buffer.add_string buf (Printf.sprintf "%s_count%s %d\n" m ls s.Histogram.count))
        (List.sort
           (fun (a : Histogram.snapshot) b -> compare a.Histogram.hlabels b.Histogram.hlabels)
           (List.rev (Hashtbl.find families fname))))
    (List.sort compare !order)

(* Compat: the pre-histogram exposition summarized each distribution as
   quantile gauges. One release of overlap behind --prom-compat so
   dashboards keyed to the old names migrate without a gap; the suffixed
   names are distinct families, so the lint invariants (unique TYPE,
   every family sampled) hold with compat on. *)
let render_quantile_gauges snaps buf =
  let families = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (s : Histogram.snapshot) ->
      match Hashtbl.find_opt families s.Histogram.hname with
      | Some l -> Hashtbl.replace families s.Histogram.hname (s :: l)
      | None ->
          Hashtbl.replace families s.Histogram.hname [ s ];
          order := s.Histogram.hname :: !order)
    snaps;
  List.iter
    (fun fname ->
      let series =
        List.sort
          (fun (a : Histogram.snapshot) b -> compare a.Histogram.hlabels b.Histogram.hlabels)
          (List.rev (Hashtbl.find families fname))
      in
      List.iter
        (fun (suffix, stat) ->
          let m = metric_name ~suffix fname in
          Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" m);
          List.iter
            (fun (s : Histogram.snapshot) ->
              Buffer.add_string buf
                (Printf.sprintf "%s%s %s\n" m (labels_str s.Histogram.hlabels)
                   (float_str (stat s))))
            series)
        [
          ("_p50", fun s -> Histogram.quantile s 0.5);
          ("_p90", fun s -> Histogram.quantile s 0.9);
          ("_p99", fun s -> Histogram.quantile s 0.99);
          ("_mean", Histogram.mean);
        ])
    (List.sort compare !order)

let render ?(extra = []) ?(compat = false) () =
  let buf = Buffer.create 4096 in
  render_counters (Counter.snapshot ()) buf;
  render_gauges (Gauge.snapshot ()) buf;
  let snaps = Histogram.snapshot_all () @ extra in
  render_histograms snaps buf;
  if compat then render_quantile_gauges snaps buf;
  Buffer.contents buf
