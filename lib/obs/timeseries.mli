(** In-process time series over the metric registries.

    A sampler snapshots {e every} registered counter, gauge and
    histogram (plus caller-supplied private histograms via [extra])
    into a fixed-capacity ring at a configurable interval, stamping
    each sample with the shared monotonic clock. Windows of samples are
    then derived into {e points}: per-interval counter rates, gauge
    values, and interval histogram statistics (count, rate, p50/p90/p99
    computed on the bucket-wise difference of adjacent cumulative
    snapshots).

    The ring is single-writer / lock-free-reader: [sample] publishes
    each slot with one atomic increment; readers copy without locking
    and discard anything a concurrent wrap-around clobbered (detected
    by timestamp order). At the default 1 s interval the ring holds 15
    minutes of history in ~900 slots.

    The sampler powers the server's [{"op":"timeseries"}] endpoint,
    the storm harness's embedded per-second series in
    [BENCH_load.json], and the [gps top] dashboard. *)

type t

val create :
  ?capacity:int ->
  ?interval_s:float ->
  ?clock:(unit -> int64) ->
  ?pre_sample:(unit -> unit) ->
  ?extra:(unit -> Histogram.snapshot list) ->
  unit ->
  t
(** [capacity] defaults to 900 slots, [interval_s] to 1.0. [clock]
    defaults to {!Clock.now_ns} — tests inject a gated fake clock.
    [pre_sample] runs (under the writer lock) just before each snapshot
    so derived gauges can be refreshed; [extra] contributes private
    histogram snapshots (e.g. the server's per-endpoint latency
    tables). Exceptions from either hook are swallowed. *)

val interval_s : t -> float

(** {1 Sampling} *)

val sample : t -> unit
(** Take one snapshot now. Safe from any thread; normally only the
    background thread calls this. *)

val total_samples : t -> int
(** Samples ever taken (not capped by capacity). The storm harness
    brackets a run with this to slice its own window out of the ring. *)

val last_age_s : ?now:int64 -> t -> float option
(** Seconds since the most recent sample — [None] before the first.
    The server's [status] endpoint reports this as sampler health: a
    wedged sampler thread shows up as a growing age. *)

(** {1 The background thread} *)

val start : t -> unit
(** Spawn the sampling thread (idempotent). The thread parks in short
    chunks so {!stop} is prompt even with long intervals. *)

val stop : t -> unit
(** Request stop and join. Idempotent. *)

val running : t -> bool

(** {1 Derived windows} *)

type hpoint = {
  hkey : string;  (** [name] or [name{label="v",...}] *)
  hcount : int;  (** observations in this interval *)
  hrate : float;  (** [hcount / dt_s] *)
  hp50 : float;
  hp90 : float;
  hp99 : float;
  hmax : int;  (** cumulative max (the registry does not track
                   per-interval maxima) *)
  hmean : float;  (** interval mean *)
}

type point = {
  at_ns : int64;
  t_s : float;  (** seconds since the window's baseline sample *)
  dt_s : float;  (** seconds since the previous selected sample *)
  counters : (string * int) list;  (** cumulative values, all counters *)
  rates : (string * float) list;  (** per-second deltas, nonzero only *)
  gauges : (string * float) list;
  hists : hpoint list;
}

val window : ?last:int -> ?downsample:int -> t -> point list
(** Derive points from the stored samples. [last n] restricts to the
    most recent [n] samples ([n >= 1]); [downsample k] keeps every
    k-th sample counting back from the newest, so the window always
    ends on the latest data and the sum of counter deltas over the
    points is invariant under [k] (telescoping). [n] samples yield
    [n - 1] points — the first selected sample is the baseline. *)

(** {1 Export} *)

val window_to_json : ?last:int -> ?downsample:int -> t -> Gps_graph.Json.value
(** [{"interval_s", "total_samples", "points": [{t_s, dt_s, rates,
    gauges, hist}]}] — rates carry only nonzero deltas to keep wire
    payloads and embedded bench series compact. *)

val window_to_csv : ?last:int -> ?downsample:int -> t -> string
(** One row per point; columns are [t_s], [dt_s], then the union of
    the window's rate and gauge names ([rate:name] / [gauge:name]). *)
