(* In-process time series: a sampler that periodically snapshots the
   counter/gauge/histogram registries into a bounded ring, plus the
   derivation of per-interval points (rates, deltas, interval
   percentiles) from adjacent snapshots.

   The ring is single-writer: only [sample] writes (the background
   thread, or a test calling it by hand), publishing each slot with one
   atomic increment. Readers never take a lock — they read the published
   count, copy the live slots, and drop any sample that a concurrent
   wrap-around overwrote mid-copy (detected by a non-monotonic
   timestamp). With the default one-second interval a reader would have
   to stall for [capacity] seconds to lose a sample, so in practice the
   copy is exact. *)

module Json = Gps_graph.Json

type sample = {
  at_ns : int64;
  counters : (string * int) list;  (* cumulative, sorted by name *)
  gauges : (string * float) list;
  hists : Histogram.snapshot list;
}

type t = {
  capacity : int;
  interval_s : float;
  clock : unit -> int64;
  pre_sample : unit -> unit;
  extra : unit -> Histogram.snapshot list;
  ring : sample option array;
  published : int Atomic.t;  (* total samples ever taken *)
  wlock : Mutex.t;  (* serializes writers only; readers are lock-free *)
  stopping : bool Atomic.t;
  mutable thread : Thread.t option;
}

let create ?(capacity = 900) ?(interval_s = 1.0) ?clock ?(pre_sample = Fun.id)
    ?(extra = fun () -> []) () =
  if capacity <= 0 then invalid_arg "Timeseries.create: capacity must be positive";
  if interval_s <= 0.0 then invalid_arg "Timeseries.create: interval must be positive";
  {
    capacity;
    interval_s;
    clock = (match clock with Some c -> c | None -> Clock.now_ns);
    pre_sample;
    extra;
    ring = Array.make capacity None;
    published = Atomic.make 0;
    wlock = Mutex.create ();
    stopping = Atomic.make false;
    thread = None;
  }

let interval_s t = t.interval_s
let total_samples t = Atomic.get t.published

let sample t =
  Mutex.lock t.wlock;
  (* the hook runs inside the writer lock so a refreshed gauge cannot be
     half-applied across two samples *)
  (try t.pre_sample () with _ -> ());
  let s =
    {
      at_ns = t.clock ();
      counters = Counter.snapshot ();
      gauges = Gauge.snapshot ();
      hists = Histogram.snapshot_all () @ (try t.extra () with _ -> []);
    }
  in
  let n = Atomic.get t.published in
  t.ring.(n mod t.capacity) <- Some s;
  Atomic.incr t.published;
  Mutex.unlock t.wlock

(* Chronological copy of the stored samples, resilient to a concurrent
   wrap: any sample observed out of timestamp order was overwritten
   while we copied, so it (and everything before it) is discarded. *)
let samples t =
  let n = Atomic.get t.published in
  let stored = min n t.capacity in
  let first = n - stored in
  let raw =
    List.filter_map
      (fun i -> t.ring.((first + i) mod t.capacity))
      (List.init stored Fun.id)
  in
  let rec monotone_suffix acc = function
    | [] -> acc
    | s :: rest -> (
        match acc with
        | prev :: _ when Int64.compare s.at_ns prev.at_ns < 0 ->
            (* wrapped under us: restart from here *)
            monotone_suffix [ s ] rest
        | _ -> monotone_suffix (s :: acc) rest)
  in
  List.rev (monotone_suffix [] raw)

let last_sample t =
  match samples t with [] -> None | l -> Some (List.nth l (List.length l - 1))

let last_age_s ?now t =
  match last_sample t with
  | None -> None
  | Some s ->
      let now = match now with Some n -> n | None -> t.clock () in
      Some (Int64.to_float (Int64.sub now s.at_ns) /. 1e9)

(* ------------------------------------------------------------------ *)
(* the background thread *)

let running t = t.thread <> None

let start t =
  if t.thread = None then begin
    Atomic.set t.stopping false;
    let rec loop () =
      if not (Atomic.get t.stopping) then begin
        (* chunked delay so stop is prompt even with long intervals *)
        let deadline = Int64.add (t.clock ()) (Int64.of_float (t.interval_s *. 1e9)) in
        let rec park () =
          if (not (Atomic.get t.stopping)) && Int64.compare (t.clock ()) deadline < 0 then begin
            Thread.delay (Float.min 0.05 t.interval_s);
            park ()
          end
        in
        park ();
        if not (Atomic.get t.stopping) then begin
          sample t;
          loop ()
        end
      end
    in
    t.thread <- Some (Thread.create loop ())
  end

let stop t =
  match t.thread with
  | None -> ()
  | Some th ->
      Atomic.set t.stopping true;
      (try Thread.join th with _ -> ());
      t.thread <- None

(* ------------------------------------------------------------------ *)
(* derived points *)

type hpoint = {
  hkey : string;
  hcount : int;
  hrate : float;
  hp50 : float;
  hp90 : float;
  hp99 : float;
  hmax : int;  (* cumulative max, not the interval's *)
  hmean : float;
}

type point = {
  at_ns : int64;
  t_s : float;
  dt_s : float;
  counters : (string * int) list;
  rates : (string * float) list;
  gauges : (string * float) list;
  hists : hpoint list;
}

let hist_key (s : Histogram.snapshot) =
  match s.Histogram.hlabels with
  | [] -> s.Histogram.hname
  | labels ->
      s.Histogram.hname ^ "{"
      ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) labels)
      ^ "}"

(* interval distribution = cumulative now minus cumulative then,
   pointwise on the buckets (clamped: a registry reset mid-window must
   not produce negative counts) *)
let hist_diff (a : Histogram.snapshot) (b : Histogram.snapshot option) : Histogram.snapshot =
  match b with None -> a | Some b -> Histogram.diff a b

let point_of ~base (prev : sample) (cur : sample) =
  let dt_s =
    Float.max 1e-9 (Int64.to_float (Int64.sub cur.at_ns prev.at_ns) /. 1e9)
  in
  let rates =
    List.filter_map
      (fun (name, v) ->
        let before = Option.value ~default:0 (List.assoc_opt name prev.counters) in
        let d = v - before in
        if d = 0 then None else Some (name, float_of_int d /. dt_s))
      cur.counters
  in
  let prev_hists =
    List.map (fun (s : Histogram.snapshot) -> (hist_key s, s)) prev.hists
  in
  let hists =
    List.map
      (fun (s : Histogram.snapshot) ->
        let key = hist_key s in
        let d = hist_diff s (List.assoc_opt key prev_hists) in
        {
          hkey = key;
          hcount = d.Histogram.count;
          hrate = float_of_int d.Histogram.count /. dt_s;
          hp50 = Histogram.quantile d 0.5;
          hp90 = Histogram.quantile d 0.9;
          hp99 = Histogram.quantile d 0.99;
          hmax = s.Histogram.max;
          hmean = Histogram.mean d;
        })
      cur.hists
  in
  {
    at_ns = cur.at_ns;
    t_s = Int64.to_float (Int64.sub cur.at_ns base) /. 1e9;
    dt_s;
    counters = cur.counters;
    rates;
    gauges = cur.gauges;
    hists;
  }

let select ?last ?downsample samples =
  let samples =
    match last with
    | None -> samples
    | Some n ->
        if n < 1 then invalid_arg "Timeseries.window: last must be >= 1";
        let len = List.length samples in
        if len <= n then samples else List.filteri (fun i _ -> i >= len - n) samples
  in
  match downsample with
  | None | Some 1 -> samples
  | Some k ->
      if k < 1 then invalid_arg "Timeseries.window: downsample must be >= 1";
      (* keep every k-th sample counting back from the newest, so the
         window always ends on the latest data *)
      let len = List.length samples in
      List.filteri (fun i _ -> (len - 1 - i) mod k = 0) samples

let window ?last ?downsample t =
  match select ?last ?downsample (samples t) with
  | [] | [ _ ] -> []
  | base :: _ as selected ->
      let rec pair acc = function
        | a :: (b :: _ as rest) -> pair (point_of ~base:base.at_ns a b :: acc) rest
        | _ -> List.rev acc
      in
      pair [] selected

(* ------------------------------------------------------------------ *)
(* export *)

let round3 f = Float.round (f *. 1000.) /. 1000.

let point_to_json p =
  Json.Object
    [
      ("t_s", Json.Number (round3 p.t_s));
      ("dt_s", Json.Number (round3 p.dt_s));
      ( "rates",
        Json.Object (List.map (fun (k, v) -> (k, Json.Number (round3 v))) p.rates) );
      ("gauges", Json.Object (List.map (fun (k, v) -> (k, Json.Number v)) p.gauges));
      ( "hist",
        Json.Object
          (List.map
             (fun h ->
               ( h.hkey,
                 Json.Object
                   [
                     ("count", Json.Number (float_of_int h.hcount));
                     ("rate", Json.Number (round3 h.hrate));
                     ("p50", Json.Number (Float.round h.hp50));
                     ("p90", Json.Number (Float.round h.hp90));
                     ("p99", Json.Number (Float.round h.hp99));
                     ("max", Json.Number (float_of_int h.hmax));
                     ("mean", Json.Number (Float.round h.hmean));
                   ] ))
             p.hists) );
    ]

let window_to_json ?last ?downsample t =
  let points = window ?last ?downsample t in
  Json.Object
    [
      ("interval_s", Json.Number t.interval_s);
      ("total_samples", Json.Number (float_of_int (total_samples t)));
      ("points", Json.Array (List.map point_to_json points));
    ]

(* CSV: one row per point; the column set is the union of the window's
   rate and gauge names, so a counter that only moved mid-window still
   gets a column (empty cells are 0). *)
let window_to_csv ?last ?downsample t =
  let points = window ?last ?downsample t in
  let keys sel =
    List.sort_uniq compare (List.concat_map (fun p -> List.map fst (sel p)) points)
  in
  let rate_keys = keys (fun p -> p.rates) and gauge_keys = keys (fun p -> p.gauges) in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (String.concat ","
       ([ "t_s"; "dt_s" ]
       @ List.map (fun k -> "rate:" ^ k) rate_keys
       @ List.map (fun k -> "gauge:" ^ k) gauge_keys));
  Buffer.add_char buf '\n';
  List.iter
    (fun p ->
      let cell assoc k = Option.value ~default:0.0 (List.assoc_opt k assoc) in
      Buffer.add_string buf
        (String.concat ","
           ([ Printf.sprintf "%.3f" p.t_s; Printf.sprintf "%.3f" p.dt_s ]
           @ List.map (fun k -> Printf.sprintf "%.3f" (cell p.rates k)) rate_keys
           @ List.map (fun k -> Printf.sprintf "%.3f" (cell p.gauges k)) gauge_keys));
      Buffer.add_char buf '\n')
    points;
  Buffer.contents buf
