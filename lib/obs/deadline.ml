type reason = Timed_out | Cancelled

(* [deadline_ns] is absolute monotonic time; [Int64.max_int] means "no
   time limit". [flag = None] only for the shared [none] token, which
   makes [is_none] a physical-equality test and keeps [cancel none] a
   no-op. [parents] lets [combine] observe later cancellations of either
   input without any registration/callback machinery. *)
type t = {
  deadline_ns : int64;
  flag : bool Atomic.t option;
  parents : t list;
}

let none = { deadline_ns = Int64.max_int; flag = None; parents = [] }
let is_none t = t == none

let at_ns deadline_ns =
  { deadline_ns; flag = Some (Atomic.make false); parents = [] }

let after_ns ns =
  let ns = if Int64.compare ns 0L < 0 then 0L else ns in
  let now = Clock.now_ns () in
  (* saturate instead of wrapping for absurdly large offsets *)
  let abs =
    if Int64.compare ns (Int64.sub Int64.max_int now) >= 0 then
      Int64.sub Int64.max_int 1L
    else Int64.add now ns
  in
  at_ns abs

let after_ms ms = after_ns (Int64.of_float (ms *. 1e6))
let token () = { deadline_ns = Int64.max_int; flag = Some (Atomic.make false); parents = [] }

let cancel t = match t.flag with None -> () | Some f -> Atomic.set f true

let rec cancelled t =
  (match t.flag with Some f -> Atomic.get f | None -> false)
  || List.exists cancelled t.parents

let rec earliest_deadline t =
  List.fold_left
    (fun acc p ->
      let d = earliest_deadline p in
      if Int64.compare d acc < 0 then d else acc)
    t.deadline_ns t.parents

let combine a b =
  if is_none a then b
  else if is_none b then a
  else
    {
      deadline_ns =
        (if Int64.compare a.deadline_ns b.deadline_ns <= 0 then a.deadline_ns
         else b.deadline_ns);
      flag = Some (Atomic.make false);
      parents = [ a; b ];
    }

let time_expired t =
  (* [earliest_deadline] re-derives the effective deadline from the
     parents so a [combine] stays correct even if built from values whose
     own field was max_int (pure tokens). The record field caches the
     common case. *)
  let d =
    if t.parents = [] then t.deadline_ns
    else
      let e = earliest_deadline t in
      if Int64.compare e t.deadline_ns < 0 then e else t.deadline_ns
  in
  Int64.compare d Int64.max_int < 0 && Int64.compare (Clock.now_ns ()) d >= 0

let check t =
  if is_none t then None
  else if cancelled t then Some Cancelled
  else if time_expired t then Some Timed_out
  else None

let expired t = check t <> None

let remaining_ns t =
  let d = if t.parents = [] then t.deadline_ns else earliest_deadline t in
  if Int64.compare d Int64.max_int >= 0 then None
  else
    let left = Int64.sub d (Clock.now_ns ()) in
    Some (if Int64.compare left 0L < 0 then 0L else left)

let reason_to_string = function Timed_out -> "timed-out" | Cancelled -> "cancelled"

let reason_of_string = function
  | "timed-out" -> Some Timed_out
  | "cancelled" -> Some Cancelled
  | _ -> None

let pp_reason ppf r = Format.pp_print_string ppf (reason_to_string r)
