(** Monotonic work counters.

    A counter is a named atomic integer measuring {e work done} (product
    states built, merges attempted, nodes pruned) rather than time.
    Unlike spans, counters are always on: an increment is one atomic add
    with no allocation and no branch on a global switch, cheap enough
    that hot loops accumulate locally and publish once per call.

    Counters live in one process-wide registry so that benches, the
    server's metrics endpoint and the CLI all read the same totals.
    [make] is idempotent per name — instrumented modules create their
    counters at module initialization and the registry hands back the
    same cell everywhere. *)

type t

val make : string -> t
(** Register (or look up) the counter named [name]. Names are
    dot-qualified by subsystem: ["eval.frontier_visits"],
    ["rpni.merge_accepts"], ["session.nodes_pruned"]. *)

val name : t -> string

val incr : t -> unit

val add : t -> int -> unit
(** Negative deltas are rejected with [Invalid_argument] — counters are
    monotonic by contract. *)

val value : t -> int

val snapshot : unit -> (string * int) list
(** Every registered counter, sorted by name — including zeros, so a
    document's shape does not depend on which code paths ran. *)

val snapshot_nonzero : unit -> (string * int) list
(** Only counters with a nonzero value, sorted by name. *)

val reset_all : unit -> unit
(** Zero every registered counter (benches isolate runs with this; the
    registry itself is never unregistered). *)
