(* Log-linear bucketing, HdrHistogram style: values 0..3 are exact,
   every octave above splits into [sub_count] = 4 sub-buckets, so any
   bucket's width is at most 25% of its lower bound. With 63-bit ints
   the largest observation lands at index 243; the whole table is one
   flat array of atomics and recording never allocates or locks. *)

let sub_bits = 2
let sub_count = 1 lsl sub_bits (* 4 *)

(* msb 4611686018427387903 (max_int) = 61, so indexes stop at
   (61 - sub_bits) * sub_count + (2 * sub_count - 1) = 243 *)
let n_buckets = 244

(* branchless-ish highest set bit; [v > 0] *)
let msb v =
  let r = ref 0 and v = ref v in
  if !v lsr 32 <> 0 then begin r := !r + 32; v := !v lsr 32 end;
  if !v lsr 16 <> 0 then begin r := !r + 16; v := !v lsr 16 end;
  if !v lsr 8 <> 0 then begin r := !r + 8; v := !v lsr 8 end;
  if !v lsr 4 <> 0 then begin r := !r + 4; v := !v lsr 4 end;
  if !v lsr 2 <> 0 then begin r := !r + 2; v := !v lsr 2 end;
  if !v lsr 1 <> 0 then incr r;
  !r

let bucket_index v =
  if v < sub_count then max v 0
  else
    let m = msb v in
    ((m - sub_bits) * sub_count) + (v lsr (m - sub_bits))

let bucket_lower i =
  if i < 2 * sub_count then i
  else
    let shift = (i - sub_count) / sub_count in
    let top = i - (shift * sub_count) in
    top lsl shift

let bucket_upper i =
  if i < 2 * sub_count then i
  else
    let shift = (i - sub_count) / sub_count in
    let top = i - (shift * sub_count) in
    ((top + 1) lsl shift) - 1

type t = {
  name : string;
  labels : (string * string) list;
  cells : int Atomic.t array;
  count : int Atomic.t;
  sum : int Atomic.t;
  maxv : int Atomic.t;
}

let create ?(labels = []) name =
  {
    name;
    labels = List.sort compare labels;
    cells = Array.init n_buckets (fun _ -> Atomic.make 0);
    count = Atomic.make 0;
    sum = Atomic.make 0;
    maxv = Atomic.make 0;
  }

(* The registry: touched at creation and snapshot time, never on the
   record path. *)
let registry : (string * (string * string) list, t) Hashtbl.t = Hashtbl.create 32
let lock = Mutex.create ()

let make ?(labels = []) name =
  let key = (name, List.sort compare labels) in
  Mutex.lock lock;
  let h =
    match Hashtbl.find_opt registry key with
    | Some h -> h
    | None ->
        let h = create ~labels name in
        Hashtbl.replace registry key h;
        h
  in
  Mutex.unlock lock;
  h

let name h = h.name
let labels h = h.labels

let record h v =
  let v = if v < 0 then 0 else v in
  ignore (Atomic.fetch_and_add (Array.unsafe_get h.cells (bucket_index v)) 1);
  ignore (Atomic.fetch_and_add h.count 1);
  ignore (Atomic.fetch_and_add h.sum v);
  (* contended max: one load in the common (not-a-new-max) case *)
  if v > Atomic.get h.maxv then begin
    let rec bump () =
      let cur = Atomic.get h.maxv in
      if v > cur && not (Atomic.compare_and_set h.maxv cur v) then bump ()
    in
    bump ()
  end

let record_ns h ns = record h (Int64.to_int ns)

type snapshot = {
  hname : string;
  hlabels : (string * string) list;
  count : int;
  sum : int;
  max : int;
  buckets : (int * int) list;
}

let snapshot h =
  let buckets = ref [] in
  for i = n_buckets - 1 downto 0 do
    let c = Atomic.get h.cells.(i) in
    if c > 0 then buckets := (i, c) :: !buckets
  done;
  {
    hname = h.name;
    hlabels = h.labels;
    count = Atomic.get h.count;
    sum = Atomic.get h.sum;
    max = Atomic.get h.maxv;
    buckets = !buckets;
  }

let merge a b =
  let rec go xs ys =
    match (xs, ys) with
    | [], l | l, [] -> l
    | (i, c) :: xs', (j, d) :: ys' ->
        if i < j then (i, c) :: go xs' ys
        else if j < i then (j, d) :: go xs ys'
        else (i, c + d) :: go xs' ys'
  in
  {
    hname = a.hname;
    hlabels = a.hlabels;
    count = a.count + b.count;
    sum = a.sum + b.sum;
    max = (if a.max >= b.max then a.max else b.max);
    buckets = go a.buckets b.buckets;
  }

let diff a b =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (i, c) -> Hashtbl.replace tbl i c) a.buckets;
  List.iter
    (fun (i, c) ->
      Hashtbl.replace tbl i (Option.value ~default:0 (Hashtbl.find_opt tbl i) - c))
    b.buckets;
  let buckets =
    List.sort compare (Hashtbl.fold (fun i c acc -> if c > 0 then (i, c) :: acc else acc) tbl [])
  in
  {
    a with
    count = max 0 (a.count - b.count);
    sum = max 0 (a.sum - b.sum);
    buckets;
  }

let quantile s q =
  if s.count <= 0 then 0.
  else begin
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int s.count)) in
      if r < 1 then 1 else if r > s.count then s.count else r
    in
    let rec find before = function
      | [] -> 0. (* unreachable: cumulative bucket counts reach s.count *)
      | (i, c) :: rest ->
          if before + c >= rank then
            let lo = float_of_int (bucket_lower i) and hi = float_of_int (bucket_upper i) in
            (* midpoint-rule interpolation keeps the estimate strictly
               inside the bucket's bounds *)
            let frac = (float_of_int (rank - before) -. 0.5) /. float_of_int c in
            lo +. ((hi -. lo) *. frac)
          else find (before + c) rest
    in
    find 0 s.buckets
  end

let mean s = if s.count <= 0 then 0. else float_of_int s.sum /. float_of_int s.count

let snapshot_all () =
  Mutex.lock lock;
  let all = Hashtbl.fold (fun _ h acc -> h :: acc) registry [] in
  Mutex.unlock lock;
  List.map snapshot (List.sort (fun a b -> compare (a.name, a.labels) (b.name, b.labels)) all)

let reset_all () =
  Mutex.lock lock;
  let all = Hashtbl.fold (fun _ h acc -> h :: acc) registry [] in
  Mutex.unlock lock;
  List.iter
    (fun h ->
      Array.iter (fun c -> Atomic.set c 0) h.cells;
      Atomic.set h.count 0;
      Atomic.set h.sum 0;
      Atomic.set h.maxv 0)
    all
