(** Monotonic deadlines and composable cancellation tokens.

    A {!t} bundles an absolute monotonic-clock deadline with a
    cancellation flag; either can fire independently. Tokens compose:
    {!combine} takes the earlier deadline of the two and is cancelled as
    soon as either parent is — this is how a per-request deadline is
    merged with a server-wide drain token.

    The design is poll-based (cooperative): long-running work calls
    {!check} at natural checkpoints (a BFS level boundary, every N
    expansions) and unwinds with a typed result when it returns
    [Some reason]. There are no asynchronous interrupts, so cancellation
    is race-free and cheap — the no-deadline fast path is a single
    physical-equality test ({!is_none}).

    All times use {!Clock}'s monotonic source; a stepped system clock
    never fires or starves a deadline. *)

type t

type reason = Timed_out | Cancelled

val none : t
(** The null token: never fires. {!is_none} identifies it in O(1) so hot
    paths can skip checkpoint bookkeeping entirely. *)

val is_none : t -> bool

val after_ms : float -> t
(** [after_ms ms] fires [Timed_out] once [ms] milliseconds of monotonic
    time have elapsed. Non-positive [ms] yields an already-expired
    deadline. The token is also cancellable. *)

val after_ns : int64 -> t

val token : unit -> t
(** A pure cancellation token with no time limit (fires only via
    {!cancel}). *)

val cancel : t -> unit
(** Flip the token's cancellation flag (idempotent; a no-op on
    {!none}). Descendants built with {!combine} observe it. *)

val cancelled : t -> bool
(** Cancellation flag of this token or any ancestor (does not consult
    the clock). *)

val combine : t -> t -> t
(** Earlier deadline of the two; cancelled when either parent is.
    [combine none d == d] and [combine d none == d] (no allocation). *)

val check : t -> reason option
(** [None] while live. [Cancelled] wins over [Timed_out] when both
    apply. *)

val expired : t -> bool

val remaining_ns : t -> int64 option
(** [None] when the token has no time deadline; [Some ns] (clamped at 0)
    otherwise. *)

val reason_to_string : reason -> string
(** ["timed-out"] / ["cancelled"] — the wire spelling. *)

val reason_of_string : string -> reason option
val pp_reason : Format.formatter -> reason -> unit
