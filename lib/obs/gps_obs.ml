(** Cross-cutting observability: {!Clock} is the process's one monotonic
    time source; {!Counter} and {!Gauge} are always-on named work
    counters and levels; {!Histogram} is a lock-free log-bucketed
    latency/size distribution with the same registry discipline;
    {!Trace} records structured spans into a pluggable sink (null /
    in-memory ring / JSONL) behind a global switch that costs nothing
    when off; {!Summary} aggregates span streams into per-name
    count/mean/max rows; {!Flame} folds span forests into flame-graph
    stacks; {!Prom} renders all three registries in Prometheus text
    format. {!Deadline} carries monotonic deadlines and composable
    cancellation tokens from the wire down to the eval kernel;
    {!Fault} injects deterministic failures at named sites for chaos
    testing. {!Timeseries} samples all three registries into a
    fixed-capacity ring on a background thread and derives
    rate/delta/interval-percentile windows; {!Wide_event} accumulates
    one Stripe-style audit line per request with process-wide monotonic
    request ids joining audit, slow-log and trace streams. Every engine
    layer (query evaluation, learning, interactive sessions, the
    server) reports through this library, and the bench harness
    snapshots its counters so perf PRs compare work done, not just
    wall-clock. *)

module Clock = Clock
module Deadline = Deadline
module Fault = Fault
module Counter = Counter
module Gauge = Gauge
module Histogram = Histogram
module Trace = Trace
module Summary = Summary
module Flame = Flame
module Prom = Prom
module Timeseries = Timeseries
module Wide_event = Wide_event
module Runtime = Runtime
