(** Gauges: named instantaneous values.

    Where a {!Counter} only goes up (work done), a gauge is set to the
    current level of something — live sessions, cache size, ring
    occupancy. Same process-wide registry discipline as counters:
    [make] is idempotent per name, snapshots are sorted and include
    every registered gauge. *)

type t

val make : string -> t
val name : t -> string
val set : t -> float -> unit
val set_int : t -> int -> unit
val value : t -> float
val snapshot : unit -> (string * float) list
val reset_all : unit -> unit
