(* Floats don't fit Atomic tearing-free guarantees on every platform, so
   gauges box the value; sets/reads are rare (per request, not per loop
   iteration). *)
type t = { name : string; mutable v : float; lock : Mutex.t }

let registry : (string, t) Hashtbl.t = Hashtbl.create 32
let reg_lock = Mutex.create ()

let make name =
  Mutex.lock reg_lock;
  let g =
    match Hashtbl.find_opt registry name with
    | Some g -> g
    | None ->
        let g = { name; v = 0.; lock = Mutex.create () } in
        Hashtbl.replace registry name g;
        g
  in
  Mutex.unlock reg_lock;
  g

let name g = g.name

let set g x =
  Mutex.lock g.lock;
  g.v <- x;
  Mutex.unlock g.lock

let set_int g n = set g (float_of_int n)

let value g =
  Mutex.lock g.lock;
  let x = g.v in
  Mutex.unlock g.lock;
  x

let entries () =
  Mutex.lock reg_lock;
  let all = Hashtbl.fold (fun _ g acc -> g :: acc) registry [] in
  Mutex.unlock reg_lock;
  List.sort (fun a b -> compare a.name b.name) all

let snapshot () = List.map (fun g -> (g.name, value g)) (entries ())

let reset_all () = List.iter (fun g -> set g 0.) (entries ())
