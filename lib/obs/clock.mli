(** The engine's single monotonic clock.

    Every latency the system reports — span durations, the server's
    endpoint histograms, bench wall-clock — must come from this module,
    never from [Unix.gettimeofday]: a wall clock stepped by NTP (or a
    leap second) makes histograms go backwards. The source is
    [CLOCK_MONOTONIC] via the dependency-free [bechamel.monotonic_clock]
    stub, reading in nanoseconds with no allocation. *)

val now_ns : unit -> int64
(** Nanoseconds since an arbitrary fixed origin; never decreases. *)

val elapsed_ns : int64 -> int64
(** [elapsed_ns since] is [now_ns () - since], clamped at 0. *)

val ns_to_us : int64 -> float

val ns_to_s : int64 -> float
