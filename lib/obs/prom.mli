(** Prometheus text-format exposition (version 0.0.4).

    Renders the process's observability registries — every {!Counter} as
    a [counter], every {!Gauge} as a [gauge], every registered
    {!Histogram} (plus any [extra] snapshots the caller carries, e.g.
    the server's per-endpoint latency tables) as a [histogram] with
    cumulative [_bucket{le="…"}] samples, [_sum] and [_count].

    Metric names are the registry's dot-qualified names mapped to the
    Prometheus grammar: a ["gps_"] prefix, every character outside
    [[a-zA-Z0-9_:]] replaced by ['_'], and counters suffixed ["_total"]
    per convention (["eval.runs"] → ["gps_eval_runs_total"]). Label
    values are escaped per the exposition format (backslash, quote,
    newline).

    The output is lintable by construction: exactly one [# TYPE] line
    per metric family, every family followed by at least one sample,
    no duplicate family names — the CI smoke step and the test suite
    both check this. *)

val metric_name : ?suffix:string -> string -> string
(** ["gps_"] + sanitized name + [suffix]. *)

val render_counters : (string * int) list -> Buffer.t -> unit
val render_gauges : (string * float) list -> Buffer.t -> unit
val render_histograms : Histogram.snapshot list -> Buffer.t -> unit
(** Snapshots sharing a name render as one family ([# TYPE] once) with
    one series per label set. *)

val render : ?extra:Histogram.snapshot list -> ?compat:bool -> unit -> string
(** The full exposition of the global registries; [extra] histogram
    snapshots are appended to the registered ones (and merged into
    their families when names collide). [compat] (default false — the
    server's [--prom-compat]) additionally emits the pre-histogram
    quantile-gauge families ([_p50]/[_p90]/[_p99]/[_mean] per
    distribution) for one release of dashboard overlap. *)
