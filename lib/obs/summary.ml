module Json = Gps_graph.Json

type row = { name : string; count : int; total_ns : int64; max_ns : int64; errors : int }

let is_error sp =
  List.exists (function "error", Trace.Bool true -> true | _ -> false) sp.Trace.attrs

let aggregate spans =
  let tbl : (string, row) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (sp : Trace.span) ->
      let prev =
        match Hashtbl.find_opt tbl sp.name with
        | Some r -> r
        | None -> { name = sp.name; count = 0; total_ns = 0L; max_ns = 0L; errors = 0 }
      in
      Hashtbl.replace tbl sp.name
        {
          prev with
          count = prev.count + 1;
          total_ns = Int64.add prev.total_ns sp.dur_ns;
          max_ns = (if Int64.compare sp.dur_ns prev.max_ns > 0 then sp.dur_ns else prev.max_ns);
          errors = (prev.errors + if is_error sp then 1 else 0);
        })
    spans;
  Hashtbl.fold (fun _ r acc -> r :: acc) tbl []
  |> List.sort (fun a b -> compare a.name b.name)

let mean_us r =
  if r.count = 0 then 0. else Clock.ns_to_us r.total_ns /. float_of_int r.count

type order = By_name | By_count | By_total | By_max | By_mean

let order_of_string = function
  | "name" -> Ok By_name
  | "count" -> Ok By_count
  | "total" -> Ok By_total
  | "max" -> Ok By_max
  | "mean" -> Ok By_mean
  | other -> Error (Printf.sprintf "unknown sort key %S (name, count, total, max or mean)" other)

(* numeric keys sort descending (biggest first is what you scan for),
   ties and By_name fall back to the name order *)
let sort ~by rows =
  let key r =
    match by with
    | By_name -> 0.
    | By_count -> float_of_int r.count
    | By_total -> Int64.to_float r.total_ns
    | By_max -> Int64.to_float r.max_ns
    | By_mean -> mean_us r
  in
  List.stable_sort
    (fun a b ->
      match compare (key b) (key a) with 0 -> compare a.name b.name | c -> c)
    rows

let load_channel ~name ic =
  let rec go lineno acc =
    match input_line ic with
    | exception End_of_file -> Ok (List.rev acc)
    | line when String.trim line = "" -> go (lineno + 1) acc
    | line -> (
        match Json.value_of_string line with
        | exception Json.Parse_error (pos, msg) ->
            Error (Printf.sprintf "%s:%d: json error at %d: %s" name lineno pos msg)
        | v -> (
            match Trace.span_of_json v with
            | Ok sp -> go (lineno + 1) (sp :: acc)
            | Error msg -> Error (Printf.sprintf "%s:%d: %s" name lineno msg)))
  in
  go 1 []

let load_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> load_channel ~name:path ic)

let micros_j us = Json.Number (Float.round (us *. 10.) /. 10.)  (* 0.1 µs resolution *)
let int_j n = Json.Number (float_of_int n)

let to_json ?(timings = true) rows =
  Json.Object
    (List.map
       (fun r ->
         let base = [ ("count", int_j r.count); ("errors", int_j r.errors) ] in
         let fields =
           if not timings then base
           else
             base
             @ [ ("mean_us", micros_j (mean_us r)); ("max_us", micros_j (Clock.ns_to_us r.max_ns)) ]
         in
         (r.name, Json.Object fields))
       rows)

let pp ?(timings = true) ppf rows =
  let widest =
    List.fold_left (fun w r -> max w (String.length r.name)) (String.length "span") rows
  in
  if timings then begin
    Format.fprintf ppf "%-*s %8s %6s %12s %12s@." widest "span" "count" "errs" "mean_us" "max_us";
    List.iter
      (fun r ->
        Format.fprintf ppf "%-*s %8d %6d %12.1f %12.1f@." widest r.name r.count r.errors
          (mean_us r) (Clock.ns_to_us r.max_ns))
      rows
  end
  else begin
    Format.fprintf ppf "%-*s %8s %6s@." widest "span" "count" "errs";
    List.iter
      (fun r -> Format.fprintf ppf "%-*s %8d %6d@." widest r.name r.count r.errors)
      rows
  end
