(** Wide events: one canonical JSON log line per request.

    Stripe-style request audit: a per-request accumulator that every
    layer stamps fields onto — endpoint, graph×version, cache hit/miss,
    eval counter deltas, shed/timeout outcome, bytes in/out, queue-wait
    vs service split, latency — serialized once per request as a JSONL
    line to the server's [--audit FILE] sink. Request ids come from one
    process-wide monotonic source; the same id goes into trace spans
    and slow-query log lines, so the three streams join on [id].

    The sink applies head-based sampling: keep 1-in-N by id
    (deterministic, so a storm can reconcile the audit line count with
    its client-observed request count), with errors and slow requests
    always kept. *)

type t

type value = Int of int | Float of float | Str of string | Bool of bool

(** {1 Request ids} *)

val next_id : unit -> int
(** Allocate the next request id (1, 2, 3, ...). *)

val last_id : unit -> int
(** The most recently allocated id — 0 before any. Surfaced in the
    metrics response's [server] block as [last_request_id]. *)

(** {1 The accumulator} *)

val create : ?id:int -> unit -> t
(** Fresh event; allocates via {!next_id} unless [id] is given. Also
    records its creation time on the shared monotonic clock. *)

val id : t -> int
val created_ns : t -> int64

val set_int : t -> string -> int -> unit
val set_float : t -> string -> float -> unit
val set_str : t -> string -> string -> unit
val set_bool : t -> string -> bool -> unit

val fields : t -> (string * value) list
(** Canonical field list: first-set position, last-set value — setting
    a key again updates the value without reordering (same contract as
    trace span attrs). Not thread-safe: one request, one thread. *)

val to_json : t -> Gps_graph.Json.value
(** [{"event":"request","id":N, ...fields in insertion order}]. *)

(** {1 The JSONL sink} *)

type sink

val sink : ?sample:int -> ?slow_ms:float -> out_channel -> sink
(** [sample] keeps 1-in-N events by id (default 1 = everything);
    [slow_ms] marks the always-keep latency threshold. The caller owns
    the channel. Raises [Invalid_argument] if [sample < 1]. *)

val keep : sink -> t -> ok:bool -> ms:float -> bool
(** The (deterministic) sampling decision: errors ([not ok]) and slow
    requests ([ms >= slow_ms]) are always kept; otherwise kept iff
    [id mod sample = 0]. *)

val emit : sink -> t -> ok:bool -> ms:float -> unit
(** Serialize and append one line if {!keep} says so (under the sink's
    lock — safe from concurrent connection threads); bumps the
    [audit.emitted] / [audit.sampled_out] counters. *)

val flush_sink : sink -> unit

(** {1 Offline aggregation — the engine behind [gps audit summary]} *)

type erow = {
  e_endpoint : string;
  e_count : int;
  e_errors : int;
  e_ms_sum : float;
  e_ms_max : float;
  e_p50_ms : float;
  e_p99_ms : float;
}

type summary = {
  s_total : int;
  s_malformed : int;
  s_errors : int;
  s_recovered : int;
      (** events stamped [recovered:true] — served inside the first
          post-restart sample window after a crash recovery, so a
          latency anomaly there can be attributed to cold caches *)
  s_endpoints : erow list;  (** sorted by endpoint name *)
  s_exec : erow list;
      (** latency split by execution path: events carrying a
          [d_par_levels] delta (evaluated cache misses) land in row
          ["par"] when the kernel ran parallel levels, ["seq"] when
          every level fell back sequential; [e_endpoint] holds the
          path name. Cache hits and non-eval endpoints are excluded. *)
  s_cache : (string * int) list;  (** cache-state counts, sorted *)
  s_slowest : Gps_graph.Json.value list;
      (** top-k raw events by [ms] descending, ties by id ascending *)
}

val load_jsonl : in_channel -> Gps_graph.Json.value list * int
(** Parse a JSONL audit stream: the events (in file order) and the
    count of malformed/non-object lines (tolerated, tallied). *)

val summarize :
  ?top:int -> ?malformed:int -> Gps_graph.Json.value list -> summary
(** Deterministic aggregation; [top] (default 5) bounds [s_slowest]. *)

val summary_to_json : summary -> Gps_graph.Json.value
val pp_summary : Format.formatter -> summary -> unit
