(** GC and domain telemetry from the OCaml runtime's own event ring.

    A self-monitoring consumer of the stdlib [Runtime_events] tracing
    system (OCaml ≥ 5.1). {!start} enables the per-domain ring buffers
    and opens a cursor on this process; each {!poll} drains pending
    events into the ordinary observability registries, so GC behaviour
    flows through the same Prometheus exposition, {!Timeseries}
    sampler and [gps top] panels as every other metric:

    - [gps_gc_pause_ns{domain="d",gc="minor"|"major"}] — histogram of
      stop-the-world minor pauses / major slices, per domain;
    - [gps_gc_minor_collections], [gps_gc_major_slices] — counters;
    - [gps_gc_minor_promoted_words], [gps_gc_minor_allocated_words];
    - [gps_runtime_domains_live] — gauge, from domain lifecycle events;
    - [gps_runtime_events_consumed], [gps_runtime_events_lost].

    Overhead discipline: until {!start} is called nothing exists — no
    ring file, no cursor, no polling, zero cost on every hot path.
    Once started, producers (the GC itself) write to lock-free
    per-domain rings; the cost of consumption is borne entirely by
    whoever calls {!poll} (the server wires it into the timeseries
    sampler tick; [gps profile] polls around each run). If {!poll} is
    called too rarely the ring wraps and overwritten events are
    counted in [runtime.events_lost] rather than blocking anyone. *)

val start : unit -> bool
(** Enable runtime events and open a self-monitoring cursor.
    Idempotent. Points [OCAML_RUNTIME_EVENTS_DIR] at the temp
    directory first (unless already set) so the ring file does not
    land in the working directory. Returns [false] if the runtime
    refuses (no permissions for the ring file, unsupported runtime);
    the process then simply runs without GC telemetry. *)

val started : unit -> bool

val poll : ?max:int -> unit -> int
(** Drain pending events (at most [max], default unlimited) through
    the registry, returning the number consumed. 0 when not started.
    Thread-safe; concurrent polls serialize. *)

(** {1 Reading GC pauses back}

    Conveniences over {!Histogram.snapshot_all} for consumers that
    want pause distributions without scraping Prometheus text. *)

val gc_pause_snapshots : unit -> Histogram.snapshot list
(** Every [gc.pause_ns] series (one per (domain, kind) observed). *)

val gc_pause_merged : string -> Histogram.snapshot
(** [gc_pause_merged kind] for [kind] ["minor"] or ["major"]: all
    domains' series of that kind merged into one distribution (empty
    snapshot if none observed yet). *)

val gc_pause_ns : unit -> int * int
(** Total (minor, major) pause nanoseconds observed so far. Take a
    before/after difference to attribute GC time to a region. *)
