(** Deterministic fault injection.

    Faults are armed per {e site} — a short dotted name compiled into the
    code path (["catalog.lookup"], ["qcache.insert"], ["session.step"],
    ["sock.write"], and the durability sites ["wal.append"] /
    ["store.fsync"] wired through {!Gps_graph.Wal.set_probe}) — either
    programmatically with {!configure} or from the [GPS_FAULT]
    environment variable via {!init_from_env}.

    The spec grammar is [site:mode] pairs separated by commas:

    - [site:nK] — every Kth call to the site fails (calls K, 2K, …);
    - [site:onceK] — exactly the Kth call fails;
    - [site:pP@SEED] — each call fails with probability [P], decided by a
      deterministic hash of [(site, call index, SEED)] so a given seed
      reproduces the exact same failure schedule on every run.

    Example: [GPS_FAULT="qcache.insert:n3,sock.write:p0.05@42"].

    When a site trips, {!trip} raises {!Injected} and the global
    ["fault.injected"] counter increments; call sites translate the
    exception into their typed degraded behavior (skip the cache write,
    close the connection, return an ["unavailable"] error). Nothing is
    armed by default and the disarmed fast path is one atomic load. *)

exception Injected of string
(** Carries the site name. *)

val configure : string -> (unit, string) result
(** Parse and arm a spec string (replaces any previous configuration).
    [Error msg] on a malformed spec, leaving the previous configuration
    in place. The empty string disarms everything. *)

val configure_exn : string -> unit
(** @raise Invalid_argument on a malformed spec. *)

val init_from_env : unit -> unit
(** Arm from [GPS_FAULT] when set and non-empty; print the parse error
    to stderr and exit 2 on a malformed value (a typo'd chaos run must
    not silently test nothing). No-op when unset. *)

val clear : unit -> unit
(** Disarm all sites and reset call counters. *)

val active : unit -> bool

val should_fail : string -> bool
(** Advance the site's call counter and decide this call's fate. Always
    [false] (and counter-free) when nothing is armed. *)

val trip : string -> unit
(** [if should_fail site then raise (Injected site)] plus the
    ["fault.injected"] counter. *)

val injected_count : string -> int
(** Injections so far at [site] (0 when unknown). *)

val sites : unit -> (string * int) list
(** Armed sites with their injection counts, sorted by name. *)
