type t = { name : string; cell : int Atomic.t }

(* The registry: touched at module-init time and by snapshots, never on
   the increment path, so one mutex is plenty. *)
let registry : (string, t) Hashtbl.t = Hashtbl.create 64
let lock = Mutex.create ()

let make name =
  Mutex.lock lock;
  let c =
    match Hashtbl.find_opt registry name with
    | Some c -> c
    | None ->
        let c = { name; cell = Atomic.make 0 } in
        Hashtbl.replace registry name c;
        c
  in
  Mutex.unlock lock;
  c

let name c = c.name

let incr c = ignore (Atomic.fetch_and_add c.cell 1)

let add c n =
  if n < 0 then invalid_arg "Counter.add: counters are monotonic (negative delta)";
  if n > 0 then ignore (Atomic.fetch_and_add c.cell n)

let value c = Atomic.get c.cell

let entries () =
  Mutex.lock lock;
  let all = Hashtbl.fold (fun _ c acc -> c :: acc) registry [] in
  Mutex.unlock lock;
  List.sort (fun a b -> compare a.name b.name) all

let snapshot () = List.map (fun c -> (c.name, value c)) (entries ())

let snapshot_nonzero () =
  List.filter_map
    (fun c ->
      let v = value c in
      if v = 0 then None else Some (c.name, v))
    (entries ())

let reset_all () = List.iter (fun c -> Atomic.set c.cell 0) (entries ())
