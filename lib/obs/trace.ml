module Json = Gps_graph.Json

type attr = Int of int | Float of float | String of string | Bool of bool

type span = {
  id : int;
  parent : int;
  name : string;
  start_ns : int64;
  dur_ns : int64;
  attrs : (string * attr) list;
}

(* ------------------------------------------------------------------ *)
(* sinks *)

type buffer = {
  mutable ring : span array option;  (* allocated lazily at first emit *)
  capacity : int;
  mutable next : int;    (* write cursor *)
  mutable stored : int;  (* min (total, capacity) *)
  mutable total : int;
  blk : Mutex.t;
}

type sink = Null | Memory of buffer | Jsonl of out_channel

let buffer ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.buffer: capacity must be positive";
  { ring = None; capacity; next = 0; stored = 0; total = 0; blk = Mutex.create () }

let buffer_push b sp =
  Mutex.lock b.blk;
  let ring =
    match b.ring with
    | Some r -> r
    | None ->
        let r = Array.make b.capacity sp in
        b.ring <- Some r;
        r
  in
  ring.(b.next) <- sp;
  b.next <- (b.next + 1) mod b.capacity;
  if b.stored < b.capacity then b.stored <- b.stored + 1;
  b.total <- b.total + 1;
  Mutex.unlock b.blk

let buffer_spans b =
  Mutex.lock b.blk;
  let out =
    match b.ring with
    | None -> []
    | Some ring ->
        let first = (b.next - b.stored + b.capacity) mod b.capacity in
        List.init b.stored (fun i -> ring.((first + i) mod b.capacity))
  in
  Mutex.unlock b.blk;
  out

let buffer_dropped b =
  Mutex.lock b.blk;
  let d = b.total - b.stored in
  Mutex.unlock b.blk;
  d

let buffer_clear b =
  Mutex.lock b.blk;
  b.ring <- None;
  b.next <- 0;
  b.stored <- 0;
  b.total <- 0;
  Mutex.unlock b.blk

(* ------------------------------------------------------------------ *)
(* global state *)

let on = Atomic.make false
let sink = ref Null
let sink_lock = Mutex.create ()  (* serializes Jsonl writes and sink swaps *)
let next_id = Atomic.make 0

let enabled () = Atomic.get on

let enable s =
  Mutex.lock sink_lock;
  sink := s;
  Mutex.unlock sink_lock;
  Atomic.set on true

let disable () =
  Atomic.set on false;
  Mutex.lock sink_lock;
  sink := Null;
  Mutex.unlock sink_lock

let current_sink () = !sink

(* ------------------------------------------------------------------ *)
(* open-span handles and the per-thread parent stack *)

type t = {
  live : bool;
  sid : int;
  mutable sparent : int;
  sname : string;
  sstart : int64;
  mutable sattrs : (string * attr) list;  (* reverse set order *)
}

let dead = { live = false; sid = -1; sparent = -1; sname = ""; sstart = 0L; sattrs = [] }

(* Innermost open span per thread. Only touched when tracing is enabled,
   so the mutex is off the disabled path entirely. *)
let stacks : (int, t list) Hashtbl.t = Hashtbl.create 16
let stacks_lock = Mutex.create ()

let stack_push h =
  let tid = Thread.id (Thread.self ()) in
  Mutex.lock stacks_lock;
  let parent =
    match Hashtbl.find_opt stacks tid with
    | Some (p :: _ as st) ->
        Hashtbl.replace stacks tid (h :: st);
        p.sid
    | Some [] | None ->
        Hashtbl.replace stacks tid [ h ];
        -1
  in
  Mutex.unlock stacks_lock;
  parent

let stack_pop () =
  let tid = Thread.id (Thread.self ()) in
  Mutex.lock stacks_lock;
  (match Hashtbl.find_opt stacks tid with
  | Some [ _ ] | Some [] | None -> Hashtbl.remove stacks tid
  | Some (_ :: rest) -> Hashtbl.replace stacks tid rest);
  Mutex.unlock stacks_lock

let stack_top () =
  let tid = Thread.id (Thread.self ()) in
  Mutex.lock stacks_lock;
  let top = match Hashtbl.find_opt stacks tid with Some (h :: _) -> Some h | _ -> None in
  Mutex.unlock stacks_lock;
  top

(* ------------------------------------------------------------------ *)
(* attributes *)

let set_attr h key v = if h.live then h.sattrs <- (key, v) :: h.sattrs
let set_int h key v = set_attr h key (Int v)
let set_str h key v = set_attr h key (String v)
let set_bool h key v = set_attr h key (Bool v)

let set_current_attr key v =
  if Atomic.get on then
    match stack_top () with Some h -> set_attr h key v | None -> ()

(* last set wins for the value, first set wins for the position *)
let final_attrs rev =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun (k, _) ->
      if Hashtbl.mem seen k then None
      else begin
        Hashtbl.add seen k ();
        (* [rev] lists most-recent first, so assoc finds the last set *)
        Some (k, List.assoc k rev)
      end)
    (List.rev rev)

(* ------------------------------------------------------------------ *)
(* codec *)

let attr_to_json = function
  | Int n -> Json.Number (float_of_int n)
  | Float f -> Json.Number f
  | String s -> Json.String s
  | Bool b -> Json.Bool b

let span_to_json sp =
  Json.Object
    [
      ("span", Json.String sp.name);
      ("id", Json.Number (float_of_int sp.id));
      ("parent", Json.Number (float_of_int sp.parent));
      ("start_ns", Json.Number (Int64.to_float sp.start_ns));
      ("dur_ns", Json.Number (Int64.to_float sp.dur_ns));
      ("attrs", Json.Object (List.map (fun (k, v) -> (k, attr_to_json v)) sp.attrs));
    ]

let span_to_string sp = Json.value_to_string (span_to_json sp)

let span_of_json v =
  let str name =
    match Json.member name v with
    | Some (Json.String s) -> Ok s
    | _ -> Error (Printf.sprintf "span field %S missing or not a string" name)
  in
  let num name =
    match Json.member name v with
    | Some (Json.Number f) -> Ok f
    | _ -> Error (Printf.sprintf "span field %S missing or not a number" name)
  in
  let ( let* ) = Result.bind in
  let* name = str "span" in
  let* id = num "id" in
  let* parent = num "parent" in
  let* start_ns = num "start_ns" in
  let* dur_ns = num "dur_ns" in
  let* attrs =
    match Json.member "attrs" v with
    | None -> Ok []
    | Some (Json.Object fields) ->
        Ok
          (List.map
             (fun (k, v) ->
               ( k,
                 match v with
                 | Json.Bool b -> Bool b
                 | Json.String s -> String s
                 | Json.Number f when Float.is_integer f && Float.abs f < 1e15 ->
                     Int (int_of_float f)
                 | Json.Number f -> Float f
                 | other -> String (Json.value_to_string other) ))
             fields)
    | Some _ -> Error "span field \"attrs\" must be an object"
  in
  Ok
    {
      id = int_of_float id;
      parent = int_of_float parent;
      name;
      start_ns = Int64.of_float start_ns;
      dur_ns = Int64.of_float dur_ns;
      attrs;
    }

(* ------------------------------------------------------------------ *)
(* recording *)

let emit sp =
  Mutex.lock sink_lock;
  let s = !sink in
  (match s with
  | Null -> ()
  | Memory _ -> ()
  | Jsonl oc ->
      output_string oc (span_to_string sp);
      output_char oc '\n';
      (* per-line flush: a trace must survive the process being killed,
         and it makes live tailing work *)
      flush oc);
  Mutex.unlock sink_lock;
  (* ring buffers have their own lock; don't hold the sink lock for them *)
  match s with Memory b -> buffer_push b sp | Null | Jsonl _ -> ()

let close h =
  stack_pop ();
  emit
    {
      id = h.sid;
      parent = h.sparent;
      name = h.sname;
      start_ns = h.sstart;
      dur_ns = Clock.elapsed_ns h.sstart;
      attrs = final_attrs h.sattrs;
    }

let with_span ?attrs name f =
  if not (Atomic.get on) then f dead
  else begin
    let h =
      {
        live = true;
        sid = Atomic.fetch_and_add next_id 1;
        sparent = -1;
        sname = name;
        sstart = Clock.now_ns ();
        sattrs = (match attrs with None -> [] | Some l -> List.rev l);
      }
    in
    h.sparent <- stack_push h;
    match f h with
    | v ->
        close h;
        v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        set_bool h "error" true;
        close h;
        Printexc.raise_with_backtrace e bt
  end
