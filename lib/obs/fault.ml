exception Injected of string

type mode =
  | Nth of int (* calls k, 2k, 3k, ... fail *)
  | Once of int (* exactly call k fails *)
  | Prob of float * int64 (* probability, seed *)

type site = {
  mode : mode;
  calls : int Atomic.t;
  injected : int Atomic.t;
}

(* The table is replaced wholesale by [configure]/[clear]; individual
   sites use atomics so [should_fail] needs no lock. [armed] keeps the
   disarmed fast path to a single load. *)
let table : (string, site) Hashtbl.t ref = ref (Hashtbl.create 4)
let armed = Atomic.make false
let c_injected = Counter.make "fault.injected"

(* splitmix64 — a deterministic, well-mixed hash of (seed, call index)
   so probabilistic schedules replay exactly under a fixed seed. *)
let splitmix64 x =
  let open Int64 in
  let x = add x 0x9E3779B97F4A7C15L in
  let x = mul (logxor x (shift_right_logical x 30)) 0xBF58476D1CE4E5B9L in
  let x = mul (logxor x (shift_right_logical x 27)) 0x94D049BB133111EBL in
  logxor x (shift_right_logical x 31)

let prob_hits p seed call =
  (* top 53 bits -> uniform float in [0,1) *)
  let h = splitmix64 (Int64.logxor seed (Int64.of_int call)) in
  let u =
    Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0
  in
  u < p

let parse_mode s =
  let fail () = Error (Printf.sprintf "bad fault mode %S" s) in
  let int_after prefix =
    let p = String.length prefix in
    match int_of_string_opt (String.sub s p (String.length s - p)) with
    | Some k when k >= 1 -> Some k
    | _ -> None
  in
  if String.length s >= 5 && String.sub s 0 4 = "once" then
    match int_after "once" with Some k -> Ok (Once k) | None -> fail ()
  else if String.length s >= 2 && s.[0] = 'n' then
    match int_after "n" with Some k -> Ok (Nth k) | None -> fail ()
  else if String.length s >= 2 && s.[0] = 'p' then
    let body = String.sub s 1 (String.length s - 1) in
    let p_str, seed_str =
      match String.index_opt body '@' with
      | Some i ->
          ( String.sub body 0 i,
            String.sub body (i + 1) (String.length body - i - 1) )
      | None -> (body, "0")
    in
    match (float_of_string_opt p_str, Int64.of_string_opt seed_str) with
    | Some p, Some seed when p >= 0.0 && p <= 1.0 -> Ok (Prob (p, seed))
    | _ -> fail ()
  else fail ()

let parse spec =
  let entries =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | e :: rest -> (
        match String.index_opt e ':' with
        | None -> Error (Printf.sprintf "bad fault entry %S (want site:mode)" e)
        | Some i -> (
            let name = String.sub e 0 i in
            let mode_s = String.sub e (i + 1) (String.length e - i - 1) in
            if name = "" then Error (Printf.sprintf "bad fault entry %S" e)
            else
              match parse_mode mode_s with
              | Ok m -> go ((name, m) :: acc) rest
              | Error msg -> Error msg))
  in
  go [] entries

let configure spec =
  match parse spec with
  | Error _ as e -> e
  | Ok entries ->
      let tbl = Hashtbl.create (max 4 (List.length entries)) in
      List.iter
        (fun (name, mode) ->
          Hashtbl.replace tbl name
            { mode; calls = Atomic.make 0; injected = Atomic.make 0 })
        entries;
      table := tbl;
      Atomic.set armed (entries <> []);
      Ok ()

let configure_exn spec =
  match configure spec with Ok () -> () | Error msg -> invalid_arg msg

let clear () =
  table := Hashtbl.create 4;
  Atomic.set armed false

let active () = Atomic.get armed

let init_from_env () =
  match Sys.getenv_opt "GPS_FAULT" with
  | None | Some "" -> ()
  | Some spec -> (
      match configure spec with
      | Ok () -> ()
      | Error msg ->
          Printf.eprintf "gps: GPS_FAULT: %s\n%!" msg;
          exit 2)

let should_fail name =
  Atomic.get armed
  &&
  match Hashtbl.find_opt !table name with
  | None -> false
  | Some site ->
      let call = 1 + Atomic.fetch_and_add site.calls 1 in
      let hit =
        match site.mode with
        | Nth k -> call mod k = 0
        | Once k -> call = k
        | Prob (p, seed) -> prob_hits p seed call
      in
      if hit then Atomic.incr site.injected;
      hit

let trip name =
  if should_fail name then begin
    Counter.incr c_injected;
    raise (Injected name)
  end

(* The graph layer sits below us, so its durability primitives expose a
   probe hook instead of depending on this module: point it here once,
   at link time, and the wal.append / store.fsync sites obey GPS_FAULT
   schedules like any native site (no-ops while disarmed). *)
let () = Gps_graph.Wal.set_probe trip

let injected_count name =
  match Hashtbl.find_opt !table name with
  | None -> 0
  | Some site -> Atomic.get site.injected

let sites () =
  Hashtbl.fold (fun k s acc -> (k, Atomic.get s.injected) :: acc) !table []
  |> List.sort compare
