(** Aggregation of span streams into per-name statistics.

    One [row] per span name: how many spans closed under that name, the
    mean and maximum duration. This is the shared read side of tracing —
    [gps trace summary] runs it over a JSONL file, the server's metrics
    endpoint runs it over its in-memory ring, and the test suite runs it
    over synthetic spans.

    Everything duration-derived is segregated behind [timings] so that a
    summary of a deterministic workload renders deterministically
    ([timings:false] keeps only names and counts — span counts are work,
    not time). *)

type row = {
  name : string;
  count : int;
  total_ns : int64;
  max_ns : int64;
  errors : int;  (** spans closed by an exception (["error"] attr) *)
}

val aggregate : Trace.span list -> row list
(** Sorted by name. *)

val mean_us : row -> float

(** Row orderings for reports: [By_name] is {!aggregate}'s native
    (ascending) order; the numeric keys sort descending — biggest
    first — with name as the tiebreak. *)
type order = By_name | By_count | By_total | By_max | By_mean

val order_of_string : string -> (order, string) result
(** ["name"], ["count"], ["total"], ["max"], ["mean"]. *)

val sort : by:order -> row list -> row list

val load_file : string -> (Trace.span list, string) result
(** Parse a JSONL trace, strictly: any unreadable or malformed line
    fails with a message naming the line number. Blank lines are
    skipped. *)

val load_channel : name:string -> in_channel -> (Trace.span list, string) result
(** Same, from an open channel ([name] labels error messages — pass
    ["<stdin>"] for a pipe). Does not close the channel. *)

val to_json : ?timings:bool -> row list -> Gps_graph.Json.value
(** An object keyed by span name; each value has ["count"], ["errors"]
    and — with [timings] (default true) — ["mean_us"] and ["max_us"]
    (0.1 µs resolution, matching the server's histogram rendering). *)

val pp : ?timings:bool -> Format.formatter -> row list -> unit
(** An aligned table for terminals. *)
