(** Lock-free, log-bucketed, mergeable histograms.

    A histogram records non-negative integer observations (the engine
    records nanosecond latencies) into logarithmic buckets: values
    [0 .. 3] each get their own bucket, and every octave above is split
    into 4 sub-buckets, bounding the relative error of any bucket at
    25% while keeping the whole table a fixed 248 cells. Recording is a
    handful of atomic adds — no mutex, no allocation — so a histogram
    can sit on a hot path shared by every domain.

    Like {!Counter} and {!Gauge}, histograms registered with {!make}
    live in one process-wide registry ([make] is idempotent per
    (name, labels)) that the Prometheus endpoint ({!Prom}) and the
    metrics dump read. {!create} builds a {e private} histogram outside
    the registry — for per-instance state (the server's per-endpoint
    latency tables) and benchmarks.

    Reads go through {!snapshot}, an immutable copy that can be
    {!merge}d with snapshots of other histograms of the same shape —
    merging is associative and commutative, so per-domain or per-shard
    histograms aggregate into one distribution. {!quantile} estimates
    order statistics from the bucket counts; the estimate always lies
    within the bounds of the bucket holding the true value. *)

type t

(** {1 Construction} *)

val make : ?labels:(string * string) list -> string -> t
(** Register (or look up) the histogram named [name] with dimensional
    [labels] (sorted on creation; [("endpoint", "query")] renders as
    [name{endpoint="query"}] in Prometheus). Same-name histograms with
    different labels are distinct series. *)

val create : ?labels:(string * string) list -> string -> t
(** A private histogram outside the registry — never appears in
    {!snapshot_all}. *)

val name : t -> string
val labels : t -> (string * string) list

(** {1 Recording} *)

val record : t -> int -> unit
(** Record one observation. Negative values clamp to 0. Lock-free:
    safe from any thread or domain. *)

val record_ns : t -> int64 -> unit
(** [record h (Int64.to_int ns)] — the span-duration convenience. *)

(** {1 Buckets} *)

val n_buckets : int

val bucket_index : int -> int
(** The bucket an observation lands in. Monotone: [v <= w] implies
    [bucket_index v <= bucket_index w]. *)

val bucket_lower : int -> int
(** Smallest value of bucket [i] (inclusive). *)

val bucket_upper : int -> int
(** Largest value of bucket [i] (inclusive);
    [bucket_lower i <= v <= bucket_upper i] iff [bucket_index v = i]. *)

(** {1 Snapshots} *)

type snapshot = {
  hname : string;
  hlabels : (string * string) list;
  count : int;
  sum : int;
  max : int;  (** 0 when empty *)
  buckets : (int * int) list;
      (** (bucket index, count), non-zero entries only, ascending *)
}

val snapshot : t -> snapshot
(** Consistent enough for monitoring: concurrent records may be
    partially visible, but every completed {!record} is. *)

val merge : snapshot -> snapshot -> snapshot
(** Pointwise sum of two distributions ([count]/[sum] add, [max] maxes,
    buckets merge). Associative and commutative; keeps the left
    operand's name and labels. *)

val diff : snapshot -> snapshot -> snapshot
(** [diff after before]: the observations recorded between the two
    snapshots of one histogram ([count]/[sum]/buckets subtract, clamped
    at zero). [max] is kept from [after] — maxima don't subtract — so
    treat it as a lifetime max, not an interval max. Inverse of
    {!merge} when [before] is a prefix of [after]. *)

val quantile : snapshot -> float -> float
(** [quantile s q] for [q] in [[0, 1]]: an estimate of the [q]-th
    order statistic, linearly interpolated inside the bucket holding
    it — hence always within that bucket's [lower .. upper] bounds.
    0 on an empty snapshot. *)

val mean : snapshot -> float
(** [sum / count]; 0 on an empty snapshot. *)

(** {1 The registry} *)

val snapshot_all : unit -> snapshot list
(** Every registered histogram, sorted by (name, labels). *)

val reset_all : unit -> unit
(** Zero every registered histogram (benches isolate runs with this). *)
