(** Structured spans with pluggable sinks.

    A span is one named, timed unit of engine work — an RPQ evaluation,
    an RPNI generalization, one interactive step, one server dispatch —
    with a monotonic start/stop pair ({!Clock}), the id of the span it
    ran inside (spans form a forest), and a small set of key→value
    attributes measuring what the work did (states built, cache hit,
    merges accepted).

    {b The disabled-path contract.} Tracing is off by default and the
    whole module is built to be safe to leave in hot loops: with tracing
    disabled, {!with_span} allocates nothing — it invokes the body with a
    preallocated dead handle on which every setter is a no-op — and costs
    one atomic load plus a branch. Instrumented code therefore never
    guards its spans; it calls {!with_span} unconditionally.

    {b Exception safety.} {!with_span} closes and emits its span on every
    exit path; a raising body yields a span with the ["error"] attribute
    set to [true] and the exception (and its backtrace) re-raised intact.
    Every started span is closed — the QCheck suite pins this down.

    Completed spans go to the installed {!sink}: {!Null} drops them,
    {!Memory} keeps the most recent in a ring buffer (tests, the server's
    metrics endpoint), {!Jsonl} appends one JSON line each for offline
    aggregation ([gps trace summary]). Emission is mutex-serialized per
    sink; span identity is process-global, so one trace interleaves all
    threads. *)

type attr = Int of int | Float of float | String of string | Bool of bool

type span = {
  id : int;  (** unique in the process, allocated in start order *)
  parent : int;  (** enclosing span's id, [-1] for roots *)
  name : string;
  start_ns : int64;
  dur_ns : int64;
  attrs : (string * attr) list;  (** in the order they were set *)
}

(** {1 Sinks} *)

type buffer
(** A bounded ring of completed spans. *)

type sink = Null | Memory of buffer | Jsonl of out_channel

val buffer : ?capacity:int -> unit -> buffer
(** Default capacity 4096 spans; older spans are dropped, counted by
    {!buffer_dropped}. *)

val buffer_spans : buffer -> span list
(** Retained spans, oldest first. *)

val buffer_dropped : buffer -> int

val buffer_clear : buffer -> unit

(** {1 The global switch} *)

val enabled : unit -> bool

val enable : sink -> unit
(** Install [sink] and turn tracing on. *)

val disable : unit -> unit
(** Turn tracing off and restore the {!Null} sink. Does not close a
    {!Jsonl} channel — the opener owns it. *)

val current_sink : unit -> sink

(** {1 Recording} *)

type t
(** A handle on an open span (dead when tracing is disabled). *)

val with_span : ?attrs:(string * attr) list -> string -> (t -> 'a) -> 'a

val set_attr : t -> string -> attr -> unit
(** Last set wins per key. No-op on a dead handle. *)

val set_int : t -> string -> int -> unit
val set_str : t -> string -> string -> unit
val set_bool : t -> string -> bool -> unit

val set_current_attr : string -> attr -> unit
(** Set an attribute on the innermost span open on the calling thread,
    if any — how deep code (say, the query cache) annotates the request
    span it happens to run under. No-op when tracing is disabled. *)

(** {1 Codec} *)

val span_to_json : span -> Gps_graph.Json.value
(** A flat object: ["span"], ["id"], ["parent"], ["start_ns"],
    ["dur_ns"], ["attrs"]. Timestamps are JSON numbers; they round-trip
    exactly below 2{^53} ns (≈ 104 days of monotonic uptime). *)

val span_of_json : Gps_graph.Json.value -> (span, string) result

val span_to_string : span -> string
(** The JSONL line emitted by the {!Jsonl} sink. *)
