(* Wide events: one canonical JSON line per request.

   A [t] is a per-request accumulator that layers fill in as the
   request flows through them — the dispatcher stamps the endpoint, the
   cache layer its hit/miss, the eval kernel its counter deltas, the
   framing layer bytes in/out — and that is serialized once, at the end
   of the request, as a single JSONL line. Request ids come from one
   process-wide monotonic source, and the same id is stamped into trace
   spans and slow-query log lines so the three streams join. *)

module Json = Gps_graph.Json

type value = Int of int | Float of float | Str of string | Bool of bool

type t = {
  id : int;
  created_ns : int64;
  mutable fields : (string * value) list;  (* reverse insertion order *)
}

let id_source = Atomic.make 0
let next_id () = 1 + Atomic.fetch_and_add id_source 1
let last_id () = Atomic.get id_source

let create ?id () =
  let id = match id with Some i -> i | None -> next_id () in
  { id; created_ns = Clock.now_ns (); fields = [] }

let id t = t.id
let created_ns t = t.created_ns
let set t k v = t.fields <- (k, v) :: t.fields
let set_int t k v = set t k (Int v)
let set_float t k v = set t k (Float v)
let set_str t k v = set t k (Str v)
let set_bool t k v = set t k (Bool v)

(* first-set position, last-set value — same dedup contract as trace
   span attrs, so re-stamping a field (e.g. endpoint refined from
   "query" to "overloaded") updates in place *)
let fields t =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (k, v) -> if not (Hashtbl.mem seen k) then Hashtbl.add seen k v)
    t.fields;
  let emitted = Hashtbl.create 8 in
  List.filter_map
    (fun (k, _) ->
      if Hashtbl.mem emitted k then None
      else begin
        Hashtbl.add emitted k ();
        Some (k, Hashtbl.find seen k)
      end)
    (List.rev t.fields)

let value_to_json = function
  | Int i -> Json.Number (float_of_int i)
  | Float f -> Json.Number f
  | Str s -> Json.String s
  | Bool b -> Json.Bool b

let to_json t =
  Json.Object
    (("event", Json.String "request")
    :: ("id", Json.Number (float_of_int t.id))
    :: List.map (fun (k, v) -> (k, value_to_json v)) (fields t))

(* ------------------------------------------------------------------ *)
(* the JSONL sink *)

let c_emitted = Counter.make "audit.emitted"
let c_sampled_out = Counter.make "audit.sampled_out"

type sink = {
  oc : out_channel;
  sample : int;
  slow_ms : float option;
  lock : Mutex.t;
}

let sink ?(sample = 1) ?slow_ms oc =
  if sample < 1 then invalid_arg "Wide_event.sink: sample must be >= 1";
  { oc; sample; slow_ms; lock = Mutex.create () }

(* head-based: the keep decision depends only on the request id (so
   a given sample rate is deterministic and reconcilable), except that
   errors and slow requests are always kept. *)
let keep sink t ~ok ~ms =
  (not ok)
  || (match sink.slow_ms with Some s -> ms >= s | None -> false)
  || t.id mod sink.sample = 0

let emit sink t ~ok ~ms =
  if keep sink t ~ok ~ms then begin
    let line = Json.value_to_string (to_json t) in
    Mutex.lock sink.lock;
    (* line-buffered on purpose: an audit log must be tail-able and
       must survive a crash right after the request it describes *)
    (try
       output_string sink.oc line;
       output_char sink.oc '\n';
       flush sink.oc
     with Sys_error _ -> ());
    Mutex.unlock sink.lock;
    Counter.incr c_emitted
  end
  else Counter.incr c_sampled_out

let flush_sink sink =
  Mutex.lock sink.lock;
  (try flush sink.oc with Sys_error _ -> ());
  Mutex.unlock sink.lock

(* ------------------------------------------------------------------ *)
(* offline aggregation: the engine behind [gps audit summary] *)

type erow = {
  e_endpoint : string;
  e_count : int;
  e_errors : int;
  e_ms_sum : float;
  e_ms_max : float;
  e_p50_ms : float;
  e_p99_ms : float;
}

type summary = {
  s_total : int;
  s_malformed : int;
  s_errors : int;
  s_recovered : int;  (* events stamped recovered:true (post-restart window) *)
  s_endpoints : erow list;  (* sorted by endpoint name *)
  s_exec : erow list;  (* evaluated misses split par vs seq, sorted *)
  s_cache : (string * int) list;  (* cache-state counts, sorted *)
  s_slowest : Json.value list;  (* top-k events by ms desc, id asc *)
}

let load_jsonl ic =
  let events = ref [] and malformed = ref 0 in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then
         match Json.value_of_string line with
         | Json.Object _ as v -> events := v :: !events
         | _ -> incr malformed
         | exception Json.Parse_error _ -> incr malformed
     done
   with End_of_file -> ());
  (List.rev !events, !malformed)

let jstr v k =
  match Json.member k v with Some (Json.String s) -> Some s | _ -> None

let jnum v k =
  match Json.member k v with Some (Json.Number n) -> Some n | _ -> None

let jbool v k =
  match Json.member k v with Some (Json.Bool b) -> Some b | _ -> None

let summarize ?(top = 5) ?(malformed = 0) events =
  let by_endpoint = Hashtbl.create 8 and by_exec = Hashtbl.create 4 in
  let cache = Hashtbl.create 4 in
  let errors = ref 0 and recovered = ref 0 in
  let accumulate tbl key ~ok ~ms =
    let count, errs, sum, mx, hist =
      match Hashtbl.find_opt tbl key with
      | Some r -> r
      | None -> (0, 0, 0.0, 0.0, Histogram.create "audit.ms_x1000")
    in
    (* percentile substrate: latencies at microsecond resolution *)
    Histogram.record hist (int_of_float (Float.max 0.0 (ms *. 1000.)));
    Hashtbl.replace tbl key
      (count + 1, (errs + if ok then 0 else 1), sum +. ms, Float.max mx ms, hist)
  in
  List.iter
    (fun ev ->
      let endpoint = Option.value ~default:"?" (jstr ev "endpoint") in
      let ok = Option.value ~default:true (jbool ev "ok") in
      let ms = Option.value ~default:0.0 (jnum ev "ms") in
      if not ok then incr errors;
      if Option.value ~default:false (jbool ev "recovered") then incr recovered;
      accumulate by_endpoint endpoint ~ok ~ms;
      (* execution-path split: only evaluated misses carry eval deltas,
         so [d_par_levels] present classifies the request as having run
         the parallel kernel path or fallen back to sequential levels *)
      (match jnum ev "d_par_levels" with
      | Some pl -> accumulate by_exec (if pl > 0.0 then "par" else "seq") ~ok ~ms
      | None -> ());
      (match jstr ev "cache" with
      | Some state ->
          Hashtbl.replace cache state
            (1 + Option.value ~default:0 (Hashtbl.find_opt cache state))
      | None -> ()))
    events;
  let rows tbl =
    Hashtbl.fold
      (fun endpoint (count, errs, sum, mx, hist) acc ->
        let s = Histogram.snapshot hist in
        {
          e_endpoint = endpoint;
          e_count = count;
          e_errors = errs;
          e_ms_sum = sum;
          e_ms_max = mx;
          e_p50_ms = Histogram.quantile s 0.5 /. 1000.;
          e_p99_ms = Histogram.quantile s 0.99 /. 1000.;
        }
        :: acc)
      tbl []
    |> List.sort (fun a b -> compare a.e_endpoint b.e_endpoint)
  in
  let endpoints = rows by_endpoint in
  let exec = rows by_exec in
  let slowest =
    List.stable_sort
      (fun a b ->
        let ma = Option.value ~default:0.0 (jnum a "ms")
        and mb = Option.value ~default:0.0 (jnum b "ms") in
        match compare mb ma with
        | 0 ->
            compare
              (Option.value ~default:0.0 (jnum a "id"))
              (Option.value ~default:0.0 (jnum b "id"))
        | c -> c)
      events
    |> List.filteri (fun i _ -> i < top)
  in
  {
    s_total = List.length events;
    s_malformed = malformed;
    s_errors = !errors;
    s_recovered = !recovered;
    s_endpoints = endpoints;
    s_exec = exec;
    s_cache = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) cache []);
    s_slowest = slowest;
  }

let round2 f = Float.round (f *. 100.) /. 100.

let summary_to_json s =
  Json.Object
    [
      ("total", Json.Number (float_of_int s.s_total));
      ("malformed", Json.Number (float_of_int s.s_malformed));
      ("errors", Json.Number (float_of_int s.s_errors));
      ("recovered", Json.Number (float_of_int s.s_recovered));
      ( "endpoints",
        Json.Object
          (List.map
             (fun r ->
               ( r.e_endpoint,
                 Json.Object
                   [
                     ("count", Json.Number (float_of_int r.e_count));
                     ("errors", Json.Number (float_of_int r.e_errors));
                     ("mean_ms", Json.Number
                        (round2 (if r.e_count = 0 then 0.0
                                 else r.e_ms_sum /. float_of_int r.e_count)));
                     ("p50_ms", Json.Number (round2 r.e_p50_ms));
                     ("p99_ms", Json.Number (round2 r.e_p99_ms));
                     ("max_ms", Json.Number (round2 r.e_ms_max));
                   ] ))
             s.s_endpoints) );
      ( "exec",
        Json.Object
          (List.map
             (fun r ->
               ( r.e_endpoint,
                 Json.Object
                   [
                     ("count", Json.Number (float_of_int r.e_count));
                     ("errors", Json.Number (float_of_int r.e_errors));
                     ("mean_ms", Json.Number
                        (round2 (if r.e_count = 0 then 0.0
                                 else r.e_ms_sum /. float_of_int r.e_count)));
                     ("p50_ms", Json.Number (round2 r.e_p50_ms));
                     ("p99_ms", Json.Number (round2 r.e_p99_ms));
                     ("max_ms", Json.Number (round2 r.e_ms_max));
                   ] ))
             s.s_exec) );
      ( "cache",
        Json.Object (List.map (fun (k, v) -> (k, Json.Number (float_of_int v))) s.s_cache)
      );
      ("slowest", Json.Array s.s_slowest);
    ]

let pp_summary ppf s =
  Fmt.pf ppf "events: %d  (errors: %d, malformed lines: %d%s)@." s.s_total
    s.s_errors s.s_malformed
    (if s.s_recovered > 0 then
       Printf.sprintf ", post-recovery: %d" s.s_recovered
     else "");
  if s.s_endpoints <> [] then begin
    Fmt.pf ppf "@.%-14s %8s %7s %9s %9s %9s %9s@." "endpoint" "count"
      "errors" "mean ms" "p50 ms" "p99 ms" "max ms";
    List.iter
      (fun r ->
        Fmt.pf ppf "%-14s %8d %7d %9.2f %9.2f %9.2f %9.2f@." r.e_endpoint
          r.e_count r.e_errors
          (if r.e_count = 0 then 0.0 else r.e_ms_sum /. float_of_int r.e_count)
          r.e_p50_ms r.e_p99_ms r.e_ms_max)
      s.s_endpoints
  end;
  if s.s_exec <> [] then begin
    Fmt.pf ppf "@.%-14s %8s %7s %9s %9s %9s %9s@." "exec path" "count"
      "errors" "mean ms" "p50 ms" "p99 ms" "max ms";
    List.iter
      (fun r ->
        Fmt.pf ppf "%-14s %8d %7d %9.2f %9.2f %9.2f %9.2f@." r.e_endpoint
          r.e_count r.e_errors
          (if r.e_count = 0 then 0.0 else r.e_ms_sum /. float_of_int r.e_count)
          r.e_p50_ms r.e_p99_ms r.e_ms_max)
      s.s_exec
  end;
  if s.s_cache <> [] then begin
    Fmt.pf ppf "@.cache:";
    List.iter (fun (k, v) -> Fmt.pf ppf " %s=%d" k v) s.s_cache;
    Fmt.pf ppf "@."
  end;
  if s.s_slowest <> [] then begin
    Fmt.pf ppf "@.slowest:@.";
    List.iter
      (fun ev ->
        Fmt.pf ppf "  #%d %8.2f ms  %s%s@."
          (int_of_float (Option.value ~default:0.0 (jnum ev "id")))
          (Option.value ~default:0.0 (jnum ev "ms"))
          (Option.value ~default:"?" (jstr ev "endpoint"))
          (match jstr ev "query" with
          | Some q -> "  " ^ q
          | None -> ""))
      s.s_slowest
  end
