(* Self-monitoring consumer of the OCaml runtime's event ring.

   [start] turns the ring on ([Runtime_events.start]) and opens a
   cursor on our own process; [poll] drains it into the ordinary
   registries: per-(domain, kind) GC pause histograms, collection /
   promotion counters, a live-domains gauge. Nothing here runs unless
   [start] was called — the disabled path costs zero (no ring, no
   cursor, no polling) — and the ring itself is the runtime's own
   lock-free per-domain buffer, so producers (the GC) never block on
   us.

   Pause measurement pairs [runtime_begin]/[runtime_end] per
   (domain, phase): EV_MINOR brackets the stop-the-world minor
   collection, EV_MAJOR brackets a major slice. Unpaired ends (begin
   emitted before our cursor existed, or overwritten on ring wrap) are
   dropped; ring overwrites are themselves counted via [lost_events]. *)

let minor_collections = Counter.make "gc.minor_collections"
let major_slices = Counter.make "gc.major_slices"
let promoted_words = Counter.make "gc.minor_promoted_words"
let allocated_words = Counter.make "gc.minor_allocated_words"
let events_consumed = Counter.make "runtime.events_consumed"
let events_lost = Counter.make "runtime.events_lost"
let domains_live = Gauge.make "runtime.domains_live"

let pause_hist_name = "gc.pause_ns"

(* Per-(domain, kind) pause histograms, created lazily on the first
   pause observed there — [Histogram.make] is idempotent, but caching
   avoids the registry mutex on every GC. Polling is single-threaded
   (see [lock]), so a plain Hashtbl suffices. *)
let pause_hists : (int * string, Histogram.t) Hashtbl.t = Hashtbl.create 8

let pause_hist dom kind =
  match Hashtbl.find_opt pause_hists (dom, kind) with
  | Some h -> h
  | None ->
      let h =
        Histogram.make ~labels:[ ("domain", string_of_int dom); ("gc", kind) ] pause_hist_name
      in
      Hashtbl.add pause_hists (dom, kind) h;
      h

(* In-flight phase begins: (domain, phase) -> begin timestamp ns. *)
let inflight : (int * Runtime_events.runtime_phase, int64) Hashtbl.t = Hashtbl.create 8

type state = { cursor : Runtime_events.cursor; callbacks : Runtime_events.Callbacks.t }

let state : state option ref = ref None
let lock = Mutex.create ()

let kind_of_phase = function
  | Runtime_events.EV_MINOR -> Some "minor"
  | Runtime_events.EV_MAJOR -> Some "major"
  | _ -> None

let on_begin dom ts phase =
  match kind_of_phase phase with
  | None -> ()
  | Some _ -> Hashtbl.replace inflight (dom, phase) (Runtime_events.Timestamp.to_int64 ts)

let on_end dom ts phase =
  match kind_of_phase phase with
  | None -> ()
  | Some kind -> (
      match Hashtbl.find_opt inflight (dom, phase) with
      | None -> () (* begin predates the cursor or was overwritten *)
      | Some t0 ->
          Hashtbl.remove inflight (dom, phase);
          let ns = Int64.sub (Runtime_events.Timestamp.to_int64 ts) t0 in
          if Int64.compare ns 0L >= 0 then begin
            Histogram.record (pause_hist dom kind) (Int64.to_int ns);
            Counter.incr (if kind = "minor" then minor_collections else major_slices)
          end)

let on_counter _dom _ts (kind : Runtime_events.runtime_counter) v =
  match kind with
  | Runtime_events.EV_C_MINOR_PROMOTED -> Counter.add promoted_words v
  | Runtime_events.EV_C_MINOR_ALLOCATED -> Counter.add allocated_words v
  | _ -> ()

(* Domain count, maintained from lifecycle events on top of a floor of
   1 (the consuming domain itself predates its own cursor, so its
   spawn is never observed). *)
let live = ref 1

let on_lifecycle _dom _ts (kind : Runtime_events.lifecycle) _arg =
  match kind with
  | Runtime_events.EV_DOMAIN_SPAWN ->
      incr live;
      Gauge.set_int domains_live !live
  | Runtime_events.EV_DOMAIN_TERMINATE ->
      live := max 1 (!live - 1);
      Gauge.set_int domains_live !live
  | _ -> ()

let on_lost _dom n = Counter.add events_lost n

let start () =
  Mutex.lock lock;
  let ok =
    match !state with
    | Some _ -> true
    | None -> (
        try
          (* Keep the ring file out of the working directory: the
             runtime drops <pid>.events wherever this points. *)
          if Sys.getenv_opt "OCAML_RUNTIME_EVENTS_DIR" = None then
            Unix.putenv "OCAML_RUNTIME_EVENTS_DIR" (Filename.get_temp_dir_name ());
          Runtime_events.start ();
          let cursor = Runtime_events.create_cursor None in
          let callbacks =
            Runtime_events.Callbacks.create ~runtime_begin:on_begin ~runtime_end:on_end
              ~runtime_counter:on_counter ~lifecycle:on_lifecycle ~lost_events:on_lost ()
          in
          (* The consuming domain is alive and predates its own cursor. *)
          Gauge.set_int domains_live !live;
          state := Some { cursor; callbacks };
          true
        with _ -> false)
  in
  Mutex.unlock lock;
  ok

let started () =
  Mutex.lock lock;
  let s = !state <> None in
  Mutex.unlock lock;
  s

let poll ?max () =
  Mutex.lock lock;
  let n =
    match !state with
    | None -> 0
    | Some { cursor; callbacks } -> (
        try Runtime_events.read_poll cursor callbacks max with _ -> 0)
  in
  Mutex.unlock lock;
  if n > 0 then Counter.add events_consumed n;
  n

let gc_pause_snapshots () =
  List.filter (fun s -> s.Histogram.hname = pause_hist_name) (Histogram.snapshot_all ())

let kind_label s =
  Option.value ~default:"" (List.assoc_opt "gc" s.Histogram.hlabels)

let merge_kind kind snaps =
  let matching = List.filter (fun s -> kind_label s = kind) snaps in
  match matching with
  | [] -> { Histogram.hname = pause_hist_name; hlabels = [ ("gc", kind) ]; count = 0; sum = 0; max = 0; buckets = [] }
  | s :: rest -> List.fold_left Histogram.merge { s with Histogram.hlabels = [ ("gc", kind) ] } rest

let gc_pause_merged kind = merge_kind kind (gc_pause_snapshots ())

let gc_pause_ns () =
  let snaps = gc_pause_snapshots () in
  let total k = (merge_kind k snaps).Histogram.sum in
  (total "minor", total "major")
