let now_ns () = Monotonic_clock.now ()

let elapsed_ns since =
  let d = Int64.sub (now_ns ()) since in
  if Int64.compare d 0L < 0 then 0L else d

let ns_to_us ns = Int64.to_float ns /. 1e3

let ns_to_s ns = Int64.to_float ns /. 1e9
