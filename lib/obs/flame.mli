(** Folded-stack flame-graph export from recorded spans.

    Spans form a forest (parent ids); folding turns each span into one
    semicolon-joined stack — its ancestors' names, root first — valued
    by the span's {e self} time: its duration minus the summed durations
    of its direct children. Equal stacks aggregate, so the output is the
    classic [flamegraph.pl] / speedscope "folded" format, one
    [root;child;leaf value] line per distinct stack.

    Self times partition wall time: the values of all folded stacks sum
    to exactly the durations of the root spans ({!total} of {!fold} =
    sum of root [dur_ns]), provided children nest inside their parents
    — which the per-thread recorder guarantees. A span whose parent id
    is absent from the input (dropped by a ring buffer, or opened on
    another thread) is treated as a root. *)

val fold : Trace.span list -> (string * int64) list
(** Folded stacks with their aggregated self nanoseconds, sorted by
    stack. Span names are sanitized for the format: [';'] becomes
    [':'] and whitespace becomes ['_']. Negative self times (possible
    only with malformed hand-written traces) clamp to 0. *)

val total : (string * int64) list -> int64
(** Sum of all folded values. *)

val roots_total : Trace.span list -> int64
(** Sum of root-span durations — the invariant partner of
    [total (fold spans)]. *)

val to_string : (string * int64) list -> string
(** One ["stack value"] line per entry, newline-terminated — feed to
    [flamegraph.pl] or paste into speedscope. *)
