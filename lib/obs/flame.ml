(* Folded stacks: span forest -> "a;b;c self_ns" lines. Two passes over
   the span list (children sums, then stack strings), memoized stack
   resolution, aggregation by stack in a hashtable. *)

let sanitize name =
  String.map (function ';' -> ':' | ' ' | '\t' | '\n' | '\r' -> '_' | c -> c) name

let fold (spans : Trace.span list) =
  let by_id : (int, Trace.span) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun (sp : Trace.span) -> Hashtbl.replace by_id sp.Trace.id sp) spans;
  (* per-span sum of direct children's durations *)
  let child_ns : (int, int64) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (sp : Trace.span) ->
      if Hashtbl.mem by_id sp.Trace.parent then
        let prev = Option.value ~default:0L (Hashtbl.find_opt child_ns sp.Trace.parent) in
        Hashtbl.replace child_ns sp.Trace.parent (Int64.add prev sp.Trace.dur_ns))
    spans;
  (* stack string of a span = parent's stack ; own name (memoized) *)
  let stacks : (int, string) Hashtbl.t = Hashtbl.create 64 in
  let rec stack_of (sp : Trace.span) =
    match Hashtbl.find_opt stacks sp.Trace.id with
    | Some s -> s
    | None ->
        let s =
          match Hashtbl.find_opt by_id sp.Trace.parent with
          | Some parent when sp.Trace.parent <> sp.Trace.id ->
              stack_of parent ^ ";" ^ sanitize sp.Trace.name
          | _ -> sanitize sp.Trace.name
        in
        Hashtbl.replace stacks sp.Trace.id s;
        s
  in
  let agg : (string, int64) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (sp : Trace.span) ->
      let kids = Option.value ~default:0L (Hashtbl.find_opt child_ns sp.Trace.id) in
      let self = Int64.sub sp.Trace.dur_ns kids in
      let self = if Int64.compare self 0L < 0 then 0L else self in
      let stack = stack_of sp in
      let prev = Option.value ~default:0L (Hashtbl.find_opt agg stack) in
      Hashtbl.replace agg stack (Int64.add prev self))
    spans;
  Hashtbl.fold (fun stack ns acc -> (stack, ns) :: acc) agg []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let total folded = List.fold_left (fun acc (_, ns) -> Int64.add acc ns) 0L folded

let roots_total (spans : Trace.span list) =
  let by_id : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun (sp : Trace.span) -> Hashtbl.replace by_id sp.Trace.id ()) spans;
  List.fold_left
    (fun acc (sp : Trace.span) ->
      if Hashtbl.mem by_id sp.Trace.parent && sp.Trace.parent <> sp.Trace.id then acc
      else Int64.add acc sp.Trace.dur_ns)
    0L spans

let to_string folded =
  let buf = Buffer.create 1024 in
  List.iter (fun (stack, ns) -> Buffer.add_string buf (Printf.sprintf "%s %Ld\n" stack ns)) folded;
  Buffer.contents buf
