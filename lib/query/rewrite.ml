module Digraph = Gps_graph.Digraph
module Regex = Gps_regex.Regex

let known g sym = Digraph.label_of_name g (Twoway.base_label sym) <> None

let dead_symbols g q =
  List.filter (fun sym -> not (known g sym)) (Regex.alphabet (Rpq.regex q))

let specialize_known ~known q =
  let have sym = known (Twoway.base_label sym) in
  let rec go (r : Regex.t) =
    match r with
    | Empty | Epsilon -> r
    | Sym s -> if have s then r else Regex.empty
    | Alt rs -> Regex.alt (List.map go rs)
    | Seq rs -> Regex.seq (List.map go rs)
    | Star body -> Regex.star (go body)
  in
  let specialized = go (Rpq.regex q) in
  if Regex.equal specialized (Rpq.regex q) then q else Rpq.of_regex specialized

let specialize g q =
  specialize_known ~known:(fun base -> Digraph.label_of_name g base <> None) q

let base_alphabet q =
  List.sort_uniq String.compare (List.map Twoway.base_label (Regex.alphabet (Rpq.regex q)))
