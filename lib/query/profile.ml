(* The parallel-attribution harness behind [gps profile] and
   [bench --exp par_profile].

   One profiled evaluation yields, per parallel level, the wall time W,
   each participant's busy time, and the caller's barrier wait (from
   [Pool.run_stats] via the report's [efficiency] section), plus the
   GC pause delta around the run (from [Obs.Runtime]). Those compose
   into an exact decomposition of the run's parallel capacity
   [D x wall]:

     capacity = compute + gc + imbalance + barrier_wake + seq_idle

   where, summed over parallel levels l with busy vector b_l:
     imbalance    = sum_l (D * max(b_l) - sum(b_l))   straggler shadow
     barrier_wake = sum_l  D * (W_l - max(b_l))       sync + setup/merge
     seq_idle     = (D-1) * (wall - sum_l W_l)        Amdahl's sequential part
     compute      = sequential part + sum_l sum(b_l) - gc
   The identity holds by construction (each W_l >= max(b_l)), so the
   reported fractions always sum to 1 — the CI smoke asserts exactly
   that, never a latency number. Attribution decomposes the fastest
   of the profiled runs, matching the best-of timing methodology. *)

module Histogram = Gps_obs.Histogram
module Runtime = Gps_obs.Runtime
module Clock = Gps_obs.Clock
module Pool = Gps_par.Pool
module Json = Gps_graph.Json

type attribution = {
  a_compute : float;
  a_gc : float;
  a_imbalance : float;
  a_barrier_wake : float;
  a_seq_idle : float;
}

let attribution_to_json a =
  Json.Object
    [
      ("compute", Json.Number a.a_compute);
      ("gc", Json.Number a.a_gc);
      ("imbalance", Json.Number a.a_imbalance);
      ("barrier_wake", Json.Number a.a_barrier_wake);
      ("seq_idle", Json.Number a.a_seq_idle);
    ]

let attribution_sum a = a.a_compute +. a.a_gc +. a.a_imbalance +. a.a_barrier_wake +. a.a_seq_idle

type result = {
  r_domains : int;
  r_runs : int;
  r_seq_wall_ns : int;  (* best unprofiled sequential run *)
  r_par_wall_ns : int;  (* best unprofiled parallel run *)
  r_profiled_wall_ns : int;  (* mean profiled parallel run *)
  r_attr_wall_ns : int;  (* the fastest profiled run — attribution's basis *)
  r_attribution : attribution;
  r_par_levels : int;  (* per profiled run (from the last report) *)
  r_seq_fallbacks : int;
  r_busy_frac : float array;  (* per participant, over parallel level wall *)
  r_chunks_by : int array;  (* per participant, summed over profiled runs *)
  r_gc_minor : Histogram.snapshot;  (* pause delta across the profiled runs *)
  r_gc_major : Histogram.snapshot;
}

let best_of n f =
  let best = ref max_int in
  for _ = 1 to n do
    let t0 = Clock.now_ns () in
    f ();
    let d = Int64.to_int (Int64.sub (Clock.now_ns ()) t0) in
    if d < !best then best := d
  done;
  !best

let run ?(runs = 5) ?(timing_reps = 3) ?par_threshold ~domains source q =
  let domains = max 2 domains in
  ignore (Runtime.start ());
  let eval ~domains () =
    match Eval.select_source_report_result ?par_threshold ~domains source q with
    | Ok (_, report) -> report
    | Error { Eval.partial; _ } -> partial
  in
  let was_profiling = Pool.profiling () in
  Pool.set_profiling false;
  ignore (eval ~domains ());  (* warmup: pool spawned, caches hot *)
  let seq_wall_ns = best_of timing_reps (fun () -> ignore (eval ~domains:1 ())) in
  let par_wall_ns = best_of timing_reps (fun () -> ignore (eval ~domains ())) in
  (* profiled phase *)
  Pool.set_profiling true;
  ignore (Runtime.poll ());
  let gc_minor0 = Runtime.gc_pause_merged "minor" in
  let gc_major0 = Runtime.gc_pause_merged "major" in
  (* attribution comes from the fastest profiled run: it is the run
     with the least scheduler interference, methodologically matched
     to the best-of unprofiled walls; the decomposition is exact for
     any single run, so picking one keeps attribution_sum = 1 *)
  let best = ref None in
  let wall_total = ref 0 in
  let busy_by = Array.make domains 0 in
  let chunks_by = Array.make domains 0 in
  let level_wall_total = ref 0 in
  let last_report = ref None in
  for _ = 1 to runs do
    ignore (Runtime.poll ());
    let gc_before = Runtime.gc_pause_ns () in
    let t0 = Clock.now_ns () in
    let report = eval ~domains () in
    let wall_ns = Int64.to_int (Int64.sub (Clock.now_ns ()) t0) in
    ignore (Runtime.poll ());
    let gc_after = Runtime.gc_pause_ns () in
    last_report := Some report;
    wall_total := !wall_total + wall_ns;
    let d = float_of_int domains in
    let par_wall = ref 0 in
    let sum_busy = ref 0 in
    let imbalance = ref 0. in
    let barrier_wake = ref 0. in
    List.iter
      (fun lp ->
        let open Eval in
        par_wall := !par_wall + lp.lp_wall_ns;
        let mx = Array.fold_left max 0 lp.lp_busy_ns in
        let sb = Array.fold_left ( + ) 0 lp.lp_busy_ns in
        sum_busy := !sum_busy + sb;
        imbalance := !imbalance +. ((d *. float_of_int mx) -. float_of_int sb);
        barrier_wake := !barrier_wake +. (d *. float_of_int (lp.lp_wall_ns - mx));
        Array.iteri (fun i b -> if i < domains then busy_by.(i) <- busy_by.(i) + b) lp.lp_busy_ns;
        Array.iteri (fun i c -> if i < domains then chunks_by.(i) <- chunks_by.(i) + c) lp.lp_chunks_by)
      report.Eval.efficiency;
    level_wall_total := !level_wall_total + !par_wall;
    let seq_ns = max 0 (wall_ns - !par_wall) in
    let busy_total = seq_ns + !sum_busy in
    let gc_ns =
      let mb, jb = gc_before and ma, ja = gc_after in
      min busy_total (max 0 (ma - mb + (ja - jb)))
    in
    let run_attr =
      {
        a_compute = float_of_int (busy_total - gc_ns);
        a_gc = float_of_int gc_ns;
        a_imbalance = !imbalance;
        a_barrier_wake = !barrier_wake;
        a_seq_idle = (d -. 1.) *. float_of_int seq_ns;
      }
    in
    (match !best with
    | Some (best_wall, _) when best_wall <= wall_ns -> ()
    | _ -> best := Some (wall_ns, run_attr))
  done;
  Pool.set_profiling was_profiling;
  let gc_minor1 = Runtime.gc_pause_merged "minor" in
  let gc_major1 = Runtime.gc_pause_merged "major" in
  let attr_wall_ns, attribution =
    match !best with
    | None -> (0, { a_compute = 0.; a_gc = 0.; a_imbalance = 0.; a_barrier_wake = 0.; a_seq_idle = 0. })
    | Some (wall_ns, a) ->
        let capacity = float_of_int domains *. float_of_int wall_ns in
        let frac x = if capacity > 0. then x /. capacity else 0. in
        ( wall_ns,
          {
            a_compute = frac a.a_compute;
            a_gc = frac a.a_gc;
            a_imbalance = frac a.a_imbalance;
            a_barrier_wake = frac a.a_barrier_wake;
            a_seq_idle = frac a.a_seq_idle;
          } )
  in
  let busy_frac =
    Array.map
      (fun b ->
        if !level_wall_total > 0 then float_of_int b /. float_of_int !level_wall_total else 0.)
      busy_by
  in
  let par_levels, seq_fallbacks =
    match !last_report with
    | Some r -> (r.Eval.par_levels, r.Eval.seq_fallbacks)
    | None -> (0, 0)
  in
  {
    r_domains = domains;
    r_runs = runs;
    r_seq_wall_ns = seq_wall_ns;
    r_par_wall_ns = par_wall_ns;
    r_profiled_wall_ns = (if runs > 0 then !wall_total / runs else 0);
    r_attr_wall_ns = attr_wall_ns;
    r_attribution = attribution;
    r_par_levels = par_levels;
    r_seq_fallbacks = seq_fallbacks;
    r_busy_frac = busy_frac;
    r_chunks_by = chunks_by;
    r_gc_minor = Histogram.diff gc_minor1 gc_minor0;
    r_gc_major = Histogram.diff gc_major1 gc_major0;
  }

let gc_json (s : Histogram.snapshot) =
  Json.Object
    [
      ("pauses", Json.Number (float_of_int s.Histogram.count));
      ("pause_ns_total", Json.Number (float_of_int s.Histogram.sum));
      ("p50_ns", Json.Number (Histogram.quantile s 0.5));
      ("p99_ns", Json.Number (Histogram.quantile s 0.99));
    ]

let result_to_json r =
  let s_of_ns ns = float_of_int ns /. 1e9 in
  Json.Object
    [
      ("domains", Json.Number (float_of_int r.r_domains));
      ("runs", Json.Number (float_of_int r.r_runs));
      ("seq_s", Json.Number (s_of_ns r.r_seq_wall_ns));
      ("par_s", Json.Number (s_of_ns r.r_par_wall_ns));
      ("profiled_s", Json.Number (s_of_ns r.r_profiled_wall_ns));
      ("profiled_best_s", Json.Number (s_of_ns r.r_attr_wall_ns));
      ( "speedup",
        Json.Number
          (if r.r_par_wall_ns > 0 then
             float_of_int r.r_seq_wall_ns /. float_of_int r.r_par_wall_ns
           else 0.) );
      ( "profiling_overhead",
        Json.Number
          (if r.r_par_wall_ns > 0 then
             float_of_int (r.r_profiled_wall_ns - r.r_par_wall_ns) /. float_of_int r.r_par_wall_ns
           else 0.) );
      ("attribution", attribution_to_json r.r_attribution);
      ("attribution_sum", Json.Number (attribution_sum r.r_attribution));
      ("par_levels", Json.Number (float_of_int r.r_par_levels));
      ("seq_fallbacks", Json.Number (float_of_int r.r_seq_fallbacks));
      ( "per_domain",
        Json.Array
          (Array.to_list
             (Array.mapi
                (fun i f ->
                  Json.Object
                    [
                      ("domain", Json.Number (float_of_int i));
                      ("busy_frac", Json.Number f);
                      ("chunks", Json.Number (float_of_int r.r_chunks_by.(i)));
                    ])
                r.r_busy_frac)) );
      ("gc_minor", gc_json r.r_gc_minor);
      ("gc_major", gc_json r.r_gc_major);
    ]

let pp ppf r =
  let ms ns = float_of_int ns /. 1e6 in
  let a = r.r_attribution in
  Format.fprintf ppf "domains            %d (runs %d)@\n" r.r_domains r.r_runs;
  Format.fprintf ppf "sequential wall    %.3f ms@\n" (ms r.r_seq_wall_ns);
  Format.fprintf ppf "parallel wall      %.3f ms  (speedup %.2fx)@\n" (ms r.r_par_wall_ns)
    (if r.r_par_wall_ns > 0 then float_of_int r.r_seq_wall_ns /. float_of_int r.r_par_wall_ns
     else 0.);
  Format.fprintf ppf "profiled wall      %.3f ms  (mean of %d profiled runs; best %.3f ms)@\n"
    (ms r.r_profiled_wall_ns) r.r_runs (ms r.r_attr_wall_ns);
  Format.fprintf ppf "parallel levels    %d (seq fallbacks %d)@\n" r.r_par_levels r.r_seq_fallbacks;
  Format.fprintf ppf "@\nwhere the parallel capacity went (fractions of domains x wall):@\n";
  let row name v note = Format.fprintf ppf "  %-14s %5.1f%%  %s@\n" name (100. *. v) note in
  row "compute" a.a_compute "chunk bodies + the sequential part, GC excluded";
  row "gc" a.a_gc "stop-the-world pauses (minor + major)";
  row "imbalance" a.a_imbalance "stragglers: idle shadow of the slowest domain";
  row "barrier+wake" a.a_barrier_wake "job install, wake latency, barrier, merge";
  row "seq idle" a.a_seq_idle "other domains idle during sequential phases";
  Format.fprintf ppf "  %-14s %5.1f%%@\n" "total" (100. *. attribution_sum a);
  Format.fprintf ppf "@\nper-domain (over parallel levels):@\n";
  Array.iteri
    (fun i f ->
      Format.fprintf ppf "  domain %d: busy %5.1f%%  chunks %d%s@\n" i (100. *. f)
        r.r_chunks_by.(i)
        (if i = 0 then "  (caller)" else ""))
    r.r_busy_frac;
  let gc_row name (s : Gps_obs.Histogram.snapshot) =
    if s.Gps_obs.Histogram.count > 0 then
      Format.fprintf ppf "  %s: %d pauses, p50 %.0f us, p99 %.0f us, total %.2f ms@\n" name
        s.Gps_obs.Histogram.count
        (Gps_obs.Histogram.quantile s 0.5 /. 1e3)
        (Gps_obs.Histogram.quantile s 0.99 /. 1e3)
        (float_of_int s.Gps_obs.Histogram.sum /. 1e6)
    else Format.fprintf ppf "  %s: no pauses observed@\n" name
  in
  Format.fprintf ppf "@\nGC during profiled runs:@\n";
  gc_row "minor" r.r_gc_minor;
  gc_row "major" r.r_gc_major
