(** RPQ engine: compiled path queries, graph-linear evaluation via the
    product construction, witness walks, node path languages and
    hypothesis-quality metrics. *)

module Rpq = Rpq
module Eval = Eval
module Profile = Profile
module Pathlang = Pathlang
module Witness = Witness
module Metrics = Metrics
module Binary = Binary
module Twoway = Twoway
module Rewrite = Rewrite
module Incremental = Incremental
module Conjunctive = Conjunctive
