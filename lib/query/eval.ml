module Digraph = Gps_graph.Digraph
module Csr = Gps_graph.Csr
module Disk_csr = Gps_graph.Disk_csr
module Bitset = Gps_graph.Bitset
module Vec = Gps_graph.Vec
module Nfa = Gps_automata.Nfa
module Counter = Gps_obs.Counter
module Clock = Gps_obs.Clock
module Trace = Gps_obs.Trace
module Deadline = Gps_obs.Deadline
module Pool = Gps_par.Pool

(* Work counters, published once per evaluation (the loops accumulate in
   locals — no per-iteration cost). *)
let c_runs = Counter.make "eval.runs"
let c_states = Counter.make "eval.product_states"
let c_visits = Counter.make "eval.frontier_visits"
let c_dedup = Counter.make "eval.early_exit_hits"
let c_domains = Counter.make "eval.domains_used"
let c_par_levels = Counter.make "eval.par_levels"
let c_seq_fallbacks = Counter.make "eval.seq_fallbacks"
let c_cancel_checks = Counter.make "eval.cancel_checks"
let c_cancelled = Counter.make "eval.cancelled"

(* How many frontier visits between two deadline polls inside a level.
   Level boundaries always poll, so this only bounds the latency of
   cancellation inside one very wide level; 512 visits is a few
   microseconds of work. *)
let checkpoint_interval = 512

(* Below this frontier size a level is expanded inline: handing a few
   dozen product states to worker domains costs more than the work, so
   small interactive graphs never touch the pool. *)
let default_par_threshold = 1024

(* ------------------------------------------------------------------ *)
(* The evaluation plan: everything the kernel's inner loop touches, in
   flat int arrays.

   The automaton's transitions are re-indexed as a CSR-style {e reverse}
   index keyed by (label, destination state): [rev_src.(rev_off.(lbl * m
   + q') .. rev_off.(lbl * m + q' + 1) - 1)] are exactly the states [qs]
   with [qs -lbl-> q']. The backward product step — "which (v, qs)
   precede (v', q')?" — then walks the graph's in-edges once and indexes
   straight into the matching transition sources, instead of filtering a
   per-label transition list on [qd = q'] for every edge. Transitions on
   labels the graph does not know can never fire and are dropped. *)
type plan = {
  n : int;  (* graph nodes *)
  m : int;  (* automaton states *)
  rev_off : int array;  (* length n_labels * m + 1 *)
  rev_src : int array;
  starts : int list;
  finals : int list;
}

(* The plan is pure index arithmetic: it needs the node count, the label
   id space and a symbol resolver — not the adjacency itself. That keeps
   one build path for every backing (heap CSR, mapped file, mapped file
   plus overlay). *)
let build_plan ~n ~n_labels ~label_of_name nfa =
  let m = Nfa.n_states nfa in
  let keys = n_labels * m in
  let trans =
    List.filter_map
      (fun (qs, sym, qd) ->
        match label_of_name sym with
        | Some lbl -> Some (qs, lbl, qd)
        | None -> None)
      (Nfa.transitions nfa)
  in
  let rev_off = Array.make (keys + 1) 0 in
  List.iter
    (fun (_, lbl, qd) ->
      let k = (lbl * m) + qd in
      rev_off.(k + 1) <- rev_off.(k + 1) + 1)
    trans;
  for k = 1 to keys do
    rev_off.(k) <- rev_off.(k) + rev_off.(k - 1)
  done;
  let rev_src = Array.make (max rev_off.(keys) 1) 0 in
  let cursor = Array.copy rev_off in
  List.iter
    (fun (qs, lbl, qd) ->
      let k = (lbl * m) + qd in
      rev_src.(cursor.(k)) <- qs;
      cursor.(k) <- cursor.(k) + 1)
    trans;
  { n; m; rev_off; rev_src; starts = Nfa.starts nfa; finals = Nfa.finals nfa }

(* ------------------------------------------------------------------ *)
(* The one shared kernel: backward product BFS from all accepting
   product states over reversed product edges.

   Product states are int-encoded as [v * m + q]. Every state enters the
   queue at most once, so a single [n * m] int array doubles as the
   queue and the level structure: levels are [queue[head, tail)]
   snapshots, processed level-synchronously. Membership ("an accepting
   state is reachable from here") is one bit per product state — a
   {!Bitset.t} sequentially, a {!Bitset.Atomic} when worker domains
   race on discovery.

   A parallel level splits the frontier into chunks; each chunk claims
   states with an atomic bit test-and-set and appends its discoveries to
   a chunk-local buffer, merged into the queue afterwards. The {e set}
   discovered per level is execution-order independent, so results (and
   BFS distances) are deterministic for any domain count. *)

type level_stat = { frontier : int; parallel : bool }

(* Per-parallel-level scheduler telemetry, collected only when
   [Pool.profiling] is on (one clock read per level plus the pool's
   per-chunk stamps — nothing on the unprofiled path). Arrays are
   indexed by pool participant: slot 0 is the calling domain. *)
type level_perf = {
  lp_level : int;  (* 1-based BFS level, matching [levels] order *)
  lp_frontier : int;
  lp_chunks : int;
  lp_wall_ns : int;  (* whole level expansion, chunk setup + merge included *)
  lp_barrier_ns : int;  (* caller's wait after finishing its own chunks *)
  lp_busy_ns : int array;
  lp_chunks_by : int array;
  lp_wake_ns : int array;
}

let level_imbalance lp =
  let d = Array.length lp.lp_busy_ns in
  if d = 0 then 1.
  else begin
    let sum = Array.fold_left ( + ) 0 lp.lp_busy_ns in
    let mx = Array.fold_left max 0 lp.lp_busy_ns in
    if sum <= 0 then 1. else float_of_int mx *. float_of_int d /. float_of_int sum
  end

let level_busy_frac lp =
  let d = Array.length lp.lp_busy_ns in
  if d = 0 || lp.lp_wall_ns <= 0 then 0.
  else
    let sum = Array.fold_left ( + ) 0 lp.lp_busy_ns in
    float_of_int sum /. (float_of_int lp.lp_wall_ns *. float_of_int d)

type stats = {
  visits : int;
  dedup : int;
  par_levels : int;
  seq_fallbacks : int;
  domains_used : int;
  levels : level_stat list;  (* in BFS order; level 1 is the seed frontier *)
  perf : level_perf list;  (* parallel levels only; empty unless profiling *)
  discovered : int;  (* distinct product states that entered the queue *)
  cancel_checks : int;  (* deadline polls performed *)
  interrupted : Deadline.reason option;  (* [Some _] iff the BFS stopped early *)
}

(* The kernel is abstract over how in-edges are iterated. Each backing
   instantiates the functor once, so the expansion loops below
   specialize per backing at compile time — per edge the mapped file
   costs exactly what the heap CSR costs: an offset probe, a cell read
   and the closure call that already existed. *)
module type ADJACENCY = sig
  type g

  val iter_in : g -> int -> (int -> int -> unit) -> unit
  (** [iter_in g v f] calls [f label source] for every in-edge of [v]. *)
end

module Make_kernel (A : ADJACENCY) = struct
  let run ~domains ~par_threshold ~want_dist ~deadline plan adj =
  let { n; m; rev_off; rev_src; finals; _ } = plan in
  let size = n * m in
  let pool = if domains > 1 then Some (Pool.get domains) else None in
  let tas, mem =
    match pool with
    | None ->
        let b = Bitset.create size in
        (Bitset.test_and_set b, Bitset.mem b)
    | Some _ ->
        let b = Bitset.Atomic.create size in
        (Bitset.Atomic.test_and_set b, Bitset.Atomic.mem b)
  in
  let dist = if want_dist then Some (Array.make (max size 1) (-1)) else None in
  let set_dist =
    match dist with Some d -> fun idx level -> d.(idx) <- level | None -> fun _ _ -> ()
  in
  let queue = Array.make (max size 1) 0 in
  let head = ref 0 and tail = ref 0 in
  (* seed: every accepting product state, at distance 0 *)
  for v = 0 to n - 1 do
    List.iter
      (fun qf ->
        let idx = (v * m) + qf in
        if tas idx then begin
          set_dist idx 0;
          queue.(!tail) <- idx;
          incr tail
        end)
      finals
  done;
  let visits = ref 0 and dedup = ref 0 in
  let par_levels = ref 0 and seq_fallbacks = ref 0 in
  (* Cooperative cancellation: [istop] is the cross-domain stop request,
     set by whichever loop observes the deadline first. [guarded] keeps
     the no-deadline hot path at one bool test per visit — the clock is
     never read and [istop] can never flip, so the loops below degenerate
     to their original shape. Deadline polls happen at every level
     boundary and every [checkpoint_interval] visits within a level;
     [checks] totals them for the EXPLAIN report. *)
  let guarded = not (Deadline.is_none deadline) in
  let istop : Deadline.reason option Atomic.t = Atomic.make None in
  let checks = ref 0 in
  let poll () =
    incr checks;
    match Deadline.check deadline with
    | Some r -> Atomic.set istop (Some r)
    | None -> ()
  in
  let stopping () = guarded && Atomic.get istop <> None in
  (* expand queue.(i): push the product-BFS predecessors of (v', q') *)
  let expand_seq lo hi level =
    let i = ref lo in
    let since = ref 0 in
    while !i < hi && not (stopping ()) do
      (if guarded then begin
         incr since;
         if !since >= checkpoint_interval then begin
           since := 0;
           poll ()
         end
       end);
      let idx = queue.(!i) in
      let v' = idx / m and q' = idx mod m in
      A.iter_in adj v' (fun lbl v ->
          let key = (lbl * m) + q' in
          for k = rev_off.(key) to rev_off.(key + 1) - 1 do
            let pidx = (v * m) + rev_src.(k) in
            if tas pidx then begin
              set_dist pidx level;
              queue.(!tail) <- pidx;
              incr tail
            end
            else incr dedup
          done);
      incr i
    done;
    visits := !visits + (!i - lo)
  in
  let expand_par p lo hi level =
    let count = hi - lo in
    let chunks = min (Pool.size p * 2) (max 1 (count / 128)) in
    let chunk_len = (count + chunks - 1) / chunks in
    let buffers = Array.init chunks (fun _ -> Vec.create ()) in
    let dedups = Array.make chunks 0 in
    let expanded = Array.make chunks 0 in
    let local_checks = Array.make chunks 0 in
    let job_stats =
      Pool.run_stats p ~chunks (fun c ->
        let clo = lo + (c * chunk_len) in
        let chi = min hi (clo + chunk_len) in
        let buf = buffers.(c) in
        let local_dedup = ref 0 in
        let i = ref clo in
        let since = ref 0 in
        let polls = ref 0 in
        (* every chunk polls independently; the first to see the deadline
           fire publishes through [istop] and the rest bail at their next
           visit *)
        while !i < chi && not (stopping ()) do
          (if guarded then begin
             incr since;
             if !since >= checkpoint_interval then begin
               since := 0;
               incr polls;
               match Deadline.check deadline with
               | Some r -> Atomic.set istop (Some r)
               | None -> ()
             end
           end);
          let idx = queue.(!i) in
          let v' = idx / m and q' = idx mod m in
          A.iter_in adj v' (fun lbl v ->
              let key = (lbl * m) + q' in
              for k = rev_off.(key) to rev_off.(key + 1) - 1 do
                let pidx = (v * m) + rev_src.(k) in
                (* the atomic test-and-set is the merge: exactly one
                   chunk wins each newly discovered state *)
                if tas pidx then begin
                  set_dist pidx level;
                  ignore (Vec.push buf pidx)
                end
                else incr local_dedup
              done);
          incr i
        done;
          dedups.(c) <- !local_dedup;
          expanded.(c) <- !i - clo;
          local_checks.(c) <- !polls)
    in
    Array.iter
      (fun buf ->
        Vec.iter
          (fun idx ->
            queue.(!tail) <- idx;
            incr tail)
          buf)
      buffers;
    Array.iter (fun d -> dedup := !dedup + d) dedups;
    Array.iter (fun e -> visits := !visits + e) expanded;
    Array.iter (fun k -> checks := !checks + k) local_checks;
    (chunks, job_stats)
  in
  let level = ref 0 in
  let level_stats = ref [] in
  let perf = ref [] in
  if guarded then poll ();
  while !head < !tail && not (stopping ()) do
    incr level;
    let lo = !head and hi = !tail in
    head := hi;
    let parallel =
      match pool with
      | Some p when hi - lo >= par_threshold ->
          incr par_levels;
          (* one clock read per level, and only when profiling is on *)
          let profiled = Pool.profiling () in
          let t0 = if profiled then Clock.now_ns () else 0L in
          let chunks, job_stats = expand_par p lo hi !level in
          (match job_stats with
          | Some js when profiled ->
              let wall = Int64.to_int (Int64.sub (Clock.now_ns ()) t0) in
              perf :=
                {
                  lp_level = !level;
                  lp_frontier = hi - lo;
                  lp_chunks = chunks;
                  lp_wall_ns = max wall js.Pool.job_wall_ns;
                  lp_barrier_ns = js.Pool.job_barrier_ns;
                  lp_busy_ns = Array.map (fun w -> w.Pool.busy_ns) js.Pool.workers;
                  lp_chunks_by = Array.map (fun w -> w.Pool.chunks) js.Pool.workers;
                  lp_wake_ns = Array.map (fun w -> w.Pool.wake_ns) js.Pool.workers;
                }
                :: !perf
          | _ -> ());
          true
      | Some _ ->
          incr seq_fallbacks;
          expand_seq lo hi !level;
          false
      | None ->
          expand_seq lo hi !level;
          false
    in
    level_stats := { frontier = hi - lo; parallel } :: !level_stats;
    if guarded then poll ()
  done;
  let stats =
    {
      visits = !visits;
      dedup = !dedup;
      par_levels = !par_levels;
      seq_fallbacks = !seq_fallbacks;
      domains_used = (if !par_levels > 0 then domains else 1);
      levels = List.rev !level_stats;
      perf = List.rev !perf;
      discovered = !tail;
      cancel_checks = !checks;
      interrupted = Atomic.get istop;
    }
  in
  (mem, dist, stats)
end

module Heap_kernel = Make_kernel (struct
  type g = Csr.t

  let iter_in = Csr.iter_in
end)

(* The mapped fast path reads the base file's offset/cell arrays
   directly — same flat-array shape as the heap CSR, with the label and
   source unpacked from one cell. *)
module Base_adj = struct
  type g = { off : Disk_csr.int_arr; cells : Disk_csr.int_arr }

  let bits = Disk_csr.node_bits
  let mask = Disk_csr.node_mask

  let iter_in g v f =
    let lo = g.off.{v} and hi = g.off.{v + 1} in
    for i = lo to hi - 1 do
      let c = Bigarray.Array1.unsafe_get g.cells i in
      f (c lsr bits) (c land mask)
    done
end

module Base_kernel = Make_kernel (Base_adj)

(* Mapped base plus a non-empty overlay: the base loop as above, then
   the overlay's per-node adjacency. *)
module View_kernel = Make_kernel (struct
  type g = Disk_csr.view

  let iter_in = Disk_csr.iter_in
end)

(* ------------------------------------------------------------------ *)
(* Evaluation sources: which backing an evaluation runs against. *)

type source =
  | Frozen of Digraph.t * Csr.t
      (** A heap graph with its frozen snapshot (the snapshot must be
          [Csr.freeze] of exactly that graph). *)
  | Mapped of Disk_csr.view
      (** An mmap-backed packed graph, overlay included. *)

let source_nodes = function
  | Frozen (_, csr) -> Csr.n_nodes csr
  | Mapped view -> Disk_csr.n_nodes view

let plan_of_source source nfa =
  match source with
  | Frozen (g, csr) ->
      (* labels only ever grow; size by the live graph so any id the
         snapshot knows indexes in range *)
      build_plan ~n:(Csr.n_nodes csr)
        ~n_labels:(max (Digraph.n_labels g) (Csr.n_labels csr))
        ~label_of_name:(Digraph.label_of_name g) nfa
  | Mapped view ->
      build_plan ~n:(Disk_csr.n_nodes view) ~n_labels:(Disk_csr.n_labels view)
        ~label_of_name:(Disk_csr.label_of_name view) nfa

let run_on_source ~domains ~par_threshold ~want_dist ~deadline plan = function
  | Frozen (_, csr) -> Heap_kernel.run ~domains ~par_threshold ~want_dist ~deadline plan csr
  | Mapped view ->
      if Disk_csr.overlay_is_empty view then
        Base_kernel.run ~domains ~par_threshold ~want_dist ~deadline plan
          { Base_adj.off = Disk_csr.base_in_off view; cells = Disk_csr.base_in_cells view }
      else View_kernel.run ~domains ~par_threshold ~want_dist ~deadline plan view

(* Run the kernel and publish counters/span attributes — the shared tail
   of every public entry point. *)
let kernel sp ?domains ?par_threshold ?(deadline = Deadline.none) ~want_dist source nfa =
  let domains = match domains with Some d -> max 1 d | None -> Pool.default_domains () in
  let par_threshold = Option.value par_threshold ~default:default_par_threshold in
  let plan = plan_of_source source nfa in
  let mem, dist, stats = run_on_source ~domains ~par_threshold ~want_dist ~deadline plan source in
  Counter.incr c_runs;
  Counter.add c_states (plan.n * plan.m);
  Counter.add c_visits stats.visits;
  Counter.add c_dedup stats.dedup;
  Counter.add c_domains stats.domains_used;
  Counter.add c_par_levels stats.par_levels;
  Counter.add c_seq_fallbacks stats.seq_fallbacks;
  Counter.add c_cancel_checks stats.cancel_checks;
  (match stats.interrupted with
  | Some r ->
      Counter.incr c_cancelled;
      Trace.set_str sp "interrupted" (Deadline.reason_to_string r)
  | None -> ());
  Trace.set_int sp "product_states" (plan.n * plan.m);
  Trace.set_int sp "frontier_visits" stats.visits;
  Trace.set_int sp "early_exit_hits" stats.dedup;
  Trace.set_int sp "domains_used" stats.domains_used;
  Trace.set_int sp "par_levels" stats.par_levels;
  (plan, mem, dist, stats)

let selected_of_mem plan mem =
  let { n; m; starts; _ } = plan in
  let selected = Array.make n false in
  for v = 0 to n - 1 do
    selected.(v) <- List.exists (fun q0 -> mem ((v * m) + q0)) starts
  done;
  selected

(* ------------------------------------------------------------------ *)
(* the EXPLAIN report: everything one evaluation did, as data *)

type stop_reason =
  | Empty_automaton
  | Saturated
  | Frontier_exhausted
  | Timed_out
  | Cancelled

type report = {
  automaton_states : int;
  graph_nodes : int;
  product_states : int;
  frontier_visits : int;
  early_exit_hits : int;
  par_levels : int;
  seq_fallbacks : int;
  domains_used : int;
  par_threshold : int;
  report_levels : level_stat list;
  efficiency : level_perf list;
      (* per-parallel-level scheduler telemetry; empty unless pool
         profiling was on during the run *)
  stop : stop_reason;
  selected : int;  (* nodes the query selects *)
}

let stop_reason_to_string = function
  | Empty_automaton -> "empty-automaton"
  | Saturated -> "saturated"
  | Frontier_exhausted -> "frontier-exhausted"
  | Timed_out -> "timed-out"
  | Cancelled -> "cancelled"

let stop_reason_of_string = function
  | "empty-automaton" -> Ok Empty_automaton
  | "saturated" -> Ok Saturated
  | "frontier-exhausted" -> Ok Frontier_exhausted
  | "timed-out" -> Ok Timed_out
  | "cancelled" -> Ok Cancelled
  | other -> Error (Printf.sprintf "unknown stop reason %S" other)

let empty_report ~automaton_states ~graph_nodes ~par_threshold =
  {
    automaton_states;
    graph_nodes;
    product_states = automaton_states * graph_nodes;
    frontier_visits = 0;
    early_exit_hits = 0;
    par_levels = 0;
    seq_fallbacks = 0;
    domains_used = 1;
    par_threshold;
    report_levels = [];
    efficiency = [];
    stop = Empty_automaton;
    selected = 0;
  }

let report_of_stats plan ~par_threshold ~selected (stats : stats) =
  let size = plan.n * plan.m in
  {
    automaton_states = plan.m;
    graph_nodes = plan.n;
    product_states = size;
    frontier_visits = stats.visits;
    early_exit_hits = stats.dedup;
    par_levels = stats.par_levels;
    seq_fallbacks = stats.seq_fallbacks;
    domains_used = stats.domains_used;
    par_threshold;
    report_levels = stats.levels;
    efficiency = stats.perf;
    stop =
      (match stats.interrupted with
      | Some Deadline.Timed_out -> Timed_out
      | Some Deadline.Cancelled -> Cancelled
      | None ->
          if stats.discovered >= size && size > 0 then Saturated else Frontier_exhausted);
    selected;
  }

module Json = Gps_graph.Json

let level_perf_to_json lp =
  let int n = Json.Number (float_of_int n) in
  let ints a = Json.Array (Array.to_list (Array.map (fun n -> int n) a)) in
  Json.Object
    [
      ("level", int lp.lp_level);
      ("frontier", int lp.lp_frontier);
      ("chunks", int lp.lp_chunks);
      ("wall_ns", int lp.lp_wall_ns);
      ("barrier_ns", int lp.lp_barrier_ns);
      ("busy_ns", ints lp.lp_busy_ns);
      ("chunks_by", ints lp.lp_chunks_by);
      ("wake_ns", ints lp.lp_wake_ns);
      (* derived, for consumers; decoding ignores them *)
      ("imbalance", Json.Number (level_imbalance lp));
      ("busy_frac", Json.Number (level_busy_frac lp));
    ]

let level_perf_of_json item =
  let ( let* ) = Result.bind in
  let int_field name =
    match Json.member name item with
    | Some (Json.Number f) when Float.is_integer f -> Ok (int_of_float f)
    | _ -> Error (Printf.sprintf "efficiency field %S missing or not an integer" name)
  in
  let ints_field name =
    match Json.member name item with
    | Some (Json.Array items) ->
        let rec go acc = function
          | [] -> Ok (Array.of_list (List.rev acc))
          | Json.Number f :: rest when Float.is_integer f -> go (int_of_float f :: acc) rest
          | _ -> Error (Printf.sprintf "efficiency field %S must hold integers" name)
        in
        go [] items
    | _ -> Error (Printf.sprintf "efficiency field %S missing or not an array" name)
  in
  let* lp_level = int_field "level" in
  let* lp_frontier = int_field "frontier" in
  let* lp_chunks = int_field "chunks" in
  let* lp_wall_ns = int_field "wall_ns" in
  let* lp_barrier_ns = int_field "barrier_ns" in
  let* lp_busy_ns = ints_field "busy_ns" in
  let* lp_chunks_by = ints_field "chunks_by" in
  let* lp_wake_ns = ints_field "wake_ns" in
  Ok { lp_level; lp_frontier; lp_chunks; lp_wall_ns; lp_barrier_ns; lp_busy_ns; lp_chunks_by; lp_wake_ns }

let report_to_json r =
  let int n = Json.Number (float_of_int n) in
  Json.Object
    [
      ("automaton_states", int r.automaton_states);
      ("graph_nodes", int r.graph_nodes);
      ("product_states", int r.product_states);
      ("frontier_visits", int r.frontier_visits);
      ("early_exit_hits", int r.early_exit_hits);
      ("par_levels", int r.par_levels);
      ("seq_fallbacks", int r.seq_fallbacks);
      ("domains_used", int r.domains_used);
      ("par_threshold", int r.par_threshold);
      ( "levels",
        Json.Array
          (List.map
             (fun l ->
               Json.Object
                 [ ("frontier", int l.frontier); ("parallel", Json.Bool l.parallel) ])
             r.report_levels) );
      ("efficiency", Json.Array (List.map level_perf_to_json r.efficiency));
      ("stop", Json.String (stop_reason_to_string r.stop));
      ("selected", int r.selected);
    ]

let report_of_json v =
  let ( let* ) = Result.bind in
  let int_field name =
    match Json.member name v with
    | Some (Json.Number f) when Float.is_integer f -> Ok (int_of_float f)
    | _ -> Error (Printf.sprintf "report field %S missing or not an integer" name)
  in
  let* automaton_states = int_field "automaton_states" in
  let* graph_nodes = int_field "graph_nodes" in
  let* product_states = int_field "product_states" in
  let* frontier_visits = int_field "frontier_visits" in
  let* early_exit_hits = int_field "early_exit_hits" in
  let* par_levels = int_field "par_levels" in
  let* seq_fallbacks = int_field "seq_fallbacks" in
  let* domains_used = int_field "domains_used" in
  let* par_threshold = int_field "par_threshold" in
  let* selected = int_field "selected" in
  let* stop =
    match Json.member "stop" v with
    | Some (Json.String s) -> stop_reason_of_string s
    | _ -> Error "report field \"stop\" missing or not a string"
  in
  let* report_levels =
    match Json.member "levels" v with
    | Some (Json.Array items) ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | item :: rest -> (
              match (Json.member "frontier" item, Json.member "parallel" item) with
              | Some (Json.Number f), Some (Json.Bool parallel) when Float.is_integer f ->
                  go ({ frontier = int_of_float f; parallel } :: acc) rest
              | _ -> Error "level entries need integer \"frontier\" and boolean \"parallel\"")
        in
        go [] items
    | _ -> Error "report field \"levels\" missing or not an array"
  in
  (* absent in payloads from older servers: decode as empty *)
  let* efficiency =
    match Json.member "efficiency" v with
    | None -> Ok []
    | Some (Json.Array items) ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | item :: rest -> (
              match level_perf_of_json item with
              | Ok lp -> go (lp :: acc) rest
              | Error e -> Error e)
        in
        go [] items
    | Some _ -> Error "report field \"efficiency\" must be an array"
  in
  Ok
    {
      automaton_states;
      graph_nodes;
      product_states;
      frontier_visits;
      early_exit_hits;
      par_levels;
      seq_fallbacks;
      domains_used;
      par_threshold;
      report_levels;
      efficiency;
      stop;
      selected;
    }

let pp_report ppf r =
  let levels =
    String.concat " "
      (List.mapi
         (fun i l -> Printf.sprintf "%d:%d%s" (i + 1) l.frontier (if l.parallel then "p" else "s"))
         r.report_levels)
  in
  Format.fprintf ppf
    "automaton states   %d@\n\
     graph nodes        %d@\n\
     product states     %d@\n\
     frontier visits    %d@\n\
     early-exit hits    %d@\n\
     levels             %d (%s)@\n\
     parallel levels    %d (seq fallbacks %d, threshold %d)@\n\
     domains used       %d@\n\
     stop reason        %s@\n\
     selected nodes     %d@\n"
    r.automaton_states r.graph_nodes r.product_states r.frontier_visits r.early_exit_hits
    (List.length r.report_levels)
    (if levels = "" then "-" else levels)
    r.par_levels r.seq_fallbacks r.par_threshold r.domains_used
    (stop_reason_to_string r.stop)
    r.selected;
  if r.efficiency <> [] then begin
    let ms ns = float_of_int ns /. 1e6 in
    Format.fprintf ppf "parallel efficiency (per level; busy%% = sum busy / (wall x domains))@\n";
    List.iter
      (fun lp ->
        let per_domain =
          String.concat "/"
            (Array.to_list
               (Array.map
                  (fun b ->
                    if lp.lp_wall_ns <= 0 then "-"
                    else Printf.sprintf "%.0f%%" (100. *. float_of_int b /. float_of_int lp.lp_wall_ns))
                  lp.lp_busy_ns))
        in
        let chunks_by =
          String.concat "/" (Array.to_list (Array.map string_of_int lp.lp_chunks_by))
        in
        Format.fprintf ppf
          "  level %-3d frontier %-8d chunks %d (%s)  wall %.3fms  busy %.0f%% (%s)  imbalance %.2f  barrier %.3fms@\n"
          lp.lp_level lp.lp_frontier lp.lp_chunks chunks_by (ms lp.lp_wall_ns)
          (100. *. level_busy_frac lp)
          per_domain (level_imbalance lp) (ms lp.lp_barrier_ns))
      r.efficiency
  end

(* ------------------------------------------------------------------ *)
(* public entry points — all route through the one kernel *)

let select_source_nfa sp ?domains ?par_threshold source nfa =
  if Nfa.n_states nfa = 0 then Array.make (source_nodes source) false
  else begin
    let plan, mem, _, _ = kernel sp ?domains ?par_threshold ~want_dist:false source nfa in
    selected_of_mem plan mem
  end

let select_frozen_nfa sp ?domains ?par_threshold g csr nfa =
  select_source_nfa sp ?domains ?par_threshold (Frozen (g, csr)) nfa

let count_selected sel = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 sel

let select_source_report_nfa sp ?domains ?par_threshold source nfa =
  let threshold = Option.value par_threshold ~default:default_par_threshold in
  if Nfa.n_states nfa = 0 then
    ( Array.make (source_nodes source) false,
      empty_report ~automaton_states:0 ~graph_nodes:(source_nodes source)
        ~par_threshold:threshold )
  else begin
    let plan, mem, _, stats = kernel sp ?domains ?par_threshold ~want_dist:false source nfa in
    let sel = selected_of_mem plan mem in
    (sel, report_of_stats plan ~par_threshold:threshold ~selected:(count_selected sel) stats)
  end

let select_frozen_report_nfa sp ?domains ?par_threshold g csr nfa =
  select_source_report_nfa sp ?domains ?par_threshold (Frozen (g, csr)) nfa

let select_nfa ?domains ?par_threshold g nfa =
  Trace.with_span "eval.select" @@ fun sp ->
  select_frozen_nfa sp ?domains ?par_threshold g (Csr.freeze g) nfa

let select ?domains ?par_threshold g q = select_nfa ?domains ?par_threshold g (Rpq.nfa q)

let select_frozen ?domains ?par_threshold g csr q =
  Trace.with_span "eval.select_frozen" @@ fun sp ->
  select_frozen_nfa sp ?domains ?par_threshold g csr (Rpq.nfa q)

let select_report ?domains ?par_threshold g q =
  Trace.with_span "eval.select" @@ fun sp ->
  select_frozen_report_nfa sp ?domains ?par_threshold g (Csr.freeze g) (Rpq.nfa q)

let select_frozen_report ?domains ?par_threshold g csr q =
  Trace.with_span "eval.select_frozen" @@ fun sp ->
  select_frozen_report_nfa sp ?domains ?par_threshold g csr (Rpq.nfa q)

(* ------------------------------------------------------------------ *)
(* deadline-aware entry points: same kernel, typed early-stop outcome *)

type interrupted = { reason : Deadline.reason; partial : report }

let run_result sp ?domains ?par_threshold ~deadline source nfa =
  let threshold = Option.value par_threshold ~default:default_par_threshold in
  if Nfa.n_states nfa = 0 then
    Ok
      ( Array.make (source_nodes source) false,
        empty_report ~automaton_states:0 ~graph_nodes:(source_nodes source)
          ~par_threshold:threshold )
  else begin
    let plan, mem, _, stats =
      kernel sp ?domains ?par_threshold ~deadline ~want_dist:false source nfa
    in
    let sel = selected_of_mem plan mem in
    let report =
      report_of_stats plan ~par_threshold:threshold ~selected:(count_selected sel) stats
    in
    match stats.interrupted with
    | None -> Ok (sel, report)
    | Some reason -> Error { reason; partial = report }
  end

let select_frozen_report_result ?domains ?par_threshold ?(deadline = Deadline.none) g csr q =
  Trace.with_span "eval.select_frozen" @@ fun sp ->
  run_result sp ?domains ?par_threshold ~deadline (Frozen (g, csr)) (Rpq.nfa q)

let select_report_result ?domains ?par_threshold ?(deadline = Deadline.none) g q =
  Trace.with_span "eval.select" @@ fun sp ->
  run_result sp ?domains ?par_threshold ~deadline (Frozen (g, Csr.freeze g)) (Rpq.nfa q)

(* --- mapped / source-generic entry points ------------------------- *)

let source_span = function
  | Frozen _ -> "eval.select_frozen"
  | Mapped _ -> "eval.select_mapped"

let select_source_report_result ?domains ?par_threshold ?(deadline = Deadline.none) source q =
  Trace.with_span (source_span source) @@ fun sp ->
  run_result sp ?domains ?par_threshold ~deadline source (Rpq.nfa q)

let select_mapped ?domains ?par_threshold view q =
  Trace.with_span "eval.select_mapped" @@ fun sp ->
  select_source_nfa sp ?domains ?par_threshold (Mapped view) (Rpq.nfa q)

let select_mapped_report ?domains ?par_threshold view q =
  Trace.with_span "eval.select_mapped" @@ fun sp ->
  select_source_report_nfa sp ?domains ?par_threshold (Mapped view) (Rpq.nfa q)

let select_frozen_result ?domains ?par_threshold ?deadline g csr q =
  Result.map fst (select_frozen_report_result ?domains ?par_threshold ?deadline g csr q)

let select_result ?domains ?par_threshold ?deadline g q =
  Result.map fst (select_report_result ?domains ?par_threshold ?deadline g q)

let select_via_dfa ?domains ?par_threshold g q =
  let module Dfa = Gps_automata.Dfa in
  select_nfa ?domains ?par_threshold g
    (Dfa.to_nfa (Dfa.minimize (Dfa.determinize (Rpq.nfa q))))

let select_nodes g q =
  let sel = select g q in
  List.filter (fun v -> sel.(v)) (List.init (Array.length sel) Fun.id)

let selects g q v = (select g q).(v)

let consistent g q ~pos ~neg =
  let sel = select g q in
  List.for_all (fun v -> sel.(v)) pos && not (List.exists (fun v -> sel.(v)) neg)

let count g q = List.length (select_nodes g q)

let witness_lengths ?domains ?par_threshold g q =
  Trace.with_span "eval.witness_lengths" @@ fun sp ->
  let nfa = Rpq.nfa q in
  let n = Digraph.n_nodes g and m = Nfa.n_states nfa in
  let result = Array.make n None in
  if m = 0 then result
  else begin
    let plan, _, dist, _ =
      kernel sp ?domains ?par_threshold ~want_dist:true (Frozen (g, Csr.freeze g)) nfa
    in
    let dist = Option.get dist in
    for v = 0 to n - 1 do
      let best =
        List.fold_left
          (fun acc q0 ->
            let d = dist.((v * m) + q0) in
            if d = -1 then acc else match acc with Some b when b <= d -> acc | _ -> Some d)
          None plan.starts
      in
      result.(v) <- best
    done;
    result
  end

let product_states g q = Digraph.n_nodes g * Nfa.n_states (Rpq.nfa q)
