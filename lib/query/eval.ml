module Digraph = Gps_graph.Digraph
module Nfa = Gps_automata.Nfa
module Counter = Gps_obs.Counter
module Trace = Gps_obs.Trace

(* Work counters, published once per evaluation (the loops accumulate in
   locals — no per-iteration cost). *)
let c_runs = Counter.make "eval.runs"
let c_states = Counter.make "eval.product_states"
let c_visits = Counter.make "eval.frontier_visits"
let c_dedup = Counter.make "eval.early_exit_hits"

(* Automaton transitions re-indexed by the graph's label ids:
   by_label.(lbl) = [(qsrc, qdst); ...]. Transitions on labels the graph
   does not know can never fire and are dropped. *)
let index_transitions g nfa =
  let by_label = Array.make (max (Digraph.n_labels g) 1) [] in
  List.iter
    (fun (qs, sym, qd) ->
      match Digraph.label_of_name g sym with
      | Some lbl -> by_label.(lbl) <- (qs, qd) :: by_label.(lbl)
      | None -> ())
    (Nfa.transitions nfa);
  by_label

let select_nfa g nfa =
  Trace.with_span "eval.select" @@ fun sp ->
  let n = Digraph.n_nodes g and m = Nfa.n_states nfa in
  let selected = Array.make n false in
  if m = 0 then selected
  else begin
    let by_label = index_transitions g nfa in
    (* can_accept.(v * m + q) : an accepting product state is reachable
       from (v, q). Seeded at accepting states, propagated backward. *)
    let can_accept = Array.make (n * m) false in
    let queue = Queue.create () in
    let visits = ref 0 and dedup = ref 0 in
    let push v qs =
      let idx = (v * m) + qs in
      if not can_accept.(idx) then begin
        can_accept.(idx) <- true;
        Queue.add (v, qs) queue
      end
      else incr dedup
    in
    let finals = Nfa.finals nfa in
    for v = 0 to n - 1 do
      List.iter (fun qf -> push v qf) finals
    done;
    while not (Queue.is_empty queue) do
      let v', q' = Queue.pop queue in
      incr visits;
      (* predecessors: (v, q) with v -lbl-> v' in G and q -lbl-> q' in A *)
      List.iter
        (fun (lbl, v) ->
          List.iter (fun (qs, qd) -> if qd = q' then push v qs) by_label.(lbl))
        (Digraph.in_edges g v')
    done;
    let starts = Nfa.starts nfa in
    for v = 0 to n - 1 do
      selected.(v) <- List.exists (fun q0 -> can_accept.((v * m) + q0)) starts
    done;
    Counter.incr c_runs;
    Counter.add c_states (n * m);
    Counter.add c_visits !visits;
    Counter.add c_dedup !dedup;
    Trace.set_int sp "product_states" (n * m);
    Trace.set_int sp "frontier_visits" !visits;
    Trace.set_int sp "early_exit_hits" !dedup;
    selected
  end

let select g q = select_nfa g (Rpq.nfa q)

(* Same backward product BFS over a frozen CSR snapshot: no list
   allocation on the adjacency hot path. *)
let select_frozen g csr q =
  Trace.with_span "eval.select_frozen" @@ fun sp ->
  let module Csr = Gps_graph.Csr in
  let nfa = Rpq.nfa q in
  let n = Csr.n_nodes csr and m = Nfa.n_states nfa in
  let selected = Array.make n false in
  if m = 0 then selected
  else begin
    let by_label = index_transitions g nfa in
    let can_accept = Array.make (n * m) false in
    let queue = Queue.create () in
    let visits = ref 0 and dedup = ref 0 in
    let push v qs =
      let idx = (v * m) + qs in
      if not can_accept.(idx) then begin
        can_accept.(idx) <- true;
        Queue.add idx queue
      end
      else incr dedup
    in
    let finals = Nfa.finals nfa in
    for v = 0 to n - 1 do
      List.iter (fun qf -> push v qf) finals
    done;
    while not (Queue.is_empty queue) do
      let idx = Queue.pop queue in
      incr visits;
      let v' = idx / m and q' = idx mod m in
      Csr.iter_in csr v' (fun lbl v ->
          List.iter (fun (qs, qd) -> if qd = q' then push v qs) by_label.(lbl))
    done;
    let starts = Nfa.starts nfa in
    for v = 0 to n - 1 do
      selected.(v) <- List.exists (fun q0 -> can_accept.((v * m) + q0)) starts
    done;
    Counter.incr c_runs;
    Counter.add c_states (n * m);
    Counter.add c_visits !visits;
    Counter.add c_dedup !dedup;
    Trace.set_int sp "product_states" (n * m);
    Trace.set_int sp "frontier_visits" !visits;
    Trace.set_int sp "early_exit_hits" !dedup;
    selected
  end

let select_via_dfa g q =
  let module Dfa = Gps_automata.Dfa in
  select_nfa g (Dfa.to_nfa (Dfa.minimize (Dfa.determinize (Rpq.nfa q))))

let select_nodes g q =
  let sel = select g q in
  List.filter (fun v -> sel.(v)) (List.init (Array.length sel) Fun.id)

let selects g q v = (select g q).(v)

let consistent g q ~pos ~neg =
  let sel = select g q in
  List.for_all (fun v -> sel.(v)) pos && not (List.exists (fun v -> sel.(v)) neg)

let count g q = List.length (select_nodes g q)

let witness_lengths g q =
  let nfa = Rpq.nfa q in
  let n = Digraph.n_nodes g and m = Nfa.n_states nfa in
  let result = Array.make n None in
  if m = 0 then result
  else begin
    let by_label = index_transitions g nfa in
    (* dist.(v*m+q) = length of the shortest word leading (v,q) to
       acceptance; BFS from accepting states over reversed product edges
       explores in increasing length. *)
    let dist = Array.make (n * m) (-1) in
    let queue = Queue.create () in
    let push v qs d =
      let idx = (v * m) + qs in
      if dist.(idx) = -1 then begin
        dist.(idx) <- d;
        Queue.add idx queue
      end
    in
    let finals = Nfa.finals nfa in
    for v = 0 to n - 1 do
      List.iter (fun qf -> push v qf 0) finals
    done;
    while not (Queue.is_empty queue) do
      let idx = Queue.pop queue in
      let v' = idx / m and q' = idx mod m in
      let d = dist.(idx) in
      List.iter
        (fun (lbl, v) ->
          List.iter (fun (qs, qd) -> if qd = q' then push v qs (d + 1)) by_label.(lbl))
        (Digraph.in_edges g v')
    done;
    let starts = Nfa.starts nfa in
    for v = 0 to n - 1 do
      let best =
        List.fold_left
          (fun acc q0 ->
            let d = dist.((v * m) + q0) in
            if d = -1 then acc
            else match acc with Some b when b <= d -> acc | _ -> Some d)
          None starts
      in
      result.(v) <- best
    done;
    result
  end

let product_states g q = Digraph.n_nodes g * Nfa.n_states (Rpq.nfa q)
