(** Where did the parallel speedup go? The attribution harness behind
    [gps profile] and [bench --exp par_profile].

    {!run} times a query sequentially and in parallel (both
    unprofiled, best-of-N), then re-runs it with
    {!Gps_par.Pool.profiling} on and {!Gps_obs.Runtime} polling around
    each run, and decomposes the parallel capacity [domains × wall]
    {e exactly} into five buckets:

    - [compute] — time inside chunk bodies plus the sequential part of
      the run, GC pauses excluded;
    - [gc] — stop-the-world pause time (minor + major), from the
      runtime's own event ring;
    - [imbalance] — the idle shadow of stragglers:
      [Σ_l (D·max(busy_l) − Σ busy_l)] over parallel levels;
    - [barrier_wake] — synchronization: job install, worker
      wake-to-first-claim, the caller's barrier wait, chunk setup and
      frontier merge: [Σ_l D·(wall_l − max(busy_l))];
    - [seq_idle] — the other [D−1] domains idling while the caller runs
      sequential phases (Amdahl's term).

    The five fractions sum to 1 by construction — the identity is
    arithmetic, not empirical — so a consumer can gate on
    [attribution_sum ≈ 1] as a telemetry-integrity check without ever
    gating on a latency. *)

type attribution = {
  a_compute : float;
  a_gc : float;
  a_imbalance : float;
  a_barrier_wake : float;
  a_seq_idle : float;
}
(** Fractions of the fastest profiled run's parallel capacity
    [domains × r_attr_wall_ns]; sum to 1. *)

val attribution_sum : attribution -> float
val attribution_to_json : attribution -> Gps_graph.Json.value

type result = {
  r_domains : int;
  r_runs : int;  (** profiled runs aggregated into [r_attribution] *)
  r_seq_wall_ns : int;  (** best unprofiled run at [domains = 1] *)
  r_par_wall_ns : int;  (** best unprofiled run at [r_domains] *)
  r_profiled_wall_ns : int;  (** mean profiled run — the profiling tax is
                                 [r_profiled_wall_ns - r_par_wall_ns] *)
  r_attr_wall_ns : int;
      (** the fastest profiled run: the one [r_attribution] decomposes.
          Using the best run (not the mean) matches the best-of
          methodology of [r_seq_wall_ns]/[r_par_wall_ns] and keeps
          scheduler-preemption outliers on an oversubscribed host from
          inflating the busy counters relative to the sequential
          baseline. *)
  r_attribution : attribution;
  r_par_levels : int;
  r_seq_fallbacks : int;
  r_busy_frac : float array;
      (** per participant (0 = caller), busy / total parallel-level wall *)
  r_chunks_by : int array;  (** per participant, summed over profiled runs *)
  r_gc_minor : Gps_obs.Histogram.snapshot;
      (** pause distribution delta across the profiled phase *)
  r_gc_major : Gps_obs.Histogram.snapshot;
}

val run :
  ?runs:int ->
  ?timing_reps:int ->
  ?par_threshold:int ->
  domains:int ->
  Eval.source ->
  Rpq.t ->
  result
(** [run ~domains source q] with [runs] profiled repetitions (default
    5) and [timing_reps] unprofiled timing repetitions (default 3,
    best-of). [domains] is clamped to ≥ 2 — attribution of a
    one-domain run is vacuous. Starts {!Gps_obs.Runtime} (best
    effort), restores the pool's previous profiling flag on exit. *)

val result_to_json : result -> Gps_graph.Json.value
(** The per-size record committed into [BENCH_par.json]. *)

val pp : Format.formatter -> result -> unit
(** The [gps profile] terminal table. *)
