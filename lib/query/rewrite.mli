(** Graph-aware query rewriting.

    A query often mentions labels a particular graph simply does not have
    (a learned query moved to another dataset, a user typo, a shared query
    library). Any symbol absent from the graph's alphabet can never match
    an edge, so replacing it with ∅ — and letting the smart constructors
    collapse the expression — yields a smaller query with the same answer
    {e on that graph}. [(tram+monorail)*.cinema] specializes to
    [tram*.cinema] on a graph without monorails. *)

val specialize : Gps_graph.Digraph.t -> Rpq.t -> Rpq.t
(** Replace out-of-alphabet symbols by ∅ and renormalize. The selected
    node set is unchanged; the language generally shrinks. Inverse
    symbols ([l~], see {!Twoway}) are judged by their base label. *)

val dead_symbols : Gps_graph.Digraph.t -> Rpq.t -> string list
(** The symbols the specialization would remove, sorted. *)

val specialize_known : known:(string -> bool) -> Rpq.t -> Rpq.t
(** {!specialize} against an abstract alphabet: [known] is asked about
    each symbol's base label ([l~] is judged by [l]). This is the entry
    point for graph backings that are not a {!Gps_graph.Digraph} — the
    server uses it for mmap-backed catalog entries. *)

val base_alphabet : Rpq.t -> string list
(** The distinct base labels the query mentions, sorted — the label set
    the result cache intersects against ingest deltas to decide which
    entries a batch of new edges can possibly affect. *)
