(** RPQ evaluation: which nodes does a query select?

    A node [v] is selected iff in the product of the graph with the query
    NFA some accepting product state is reachable from [(v, q0)] for a
    start state [q0]. Evaluation runs one {e backward} BFS from all
    accepting product states over reversed product edges, which answers
    the question for {e every} node simultaneously in
    O(|E| · |Δ| + |V| · |Q|) — this is the engine behind every
    interaction of the system, so it must stay graph-linear.

    {2 The kernel}

    Every entry point below routes through one shared, cache-tight
    kernel: a frozen {!Gps_graph.Csr} adjacency snapshot, a flat
    CSR-style reverse transition index keyed by [(label, state)] (no
    per-edge transition-list filtering), {!Gps_graph.Bitset} membership
    tables (one bit per product state), and int-encoded product states
    in a flat array queue. The BFS is level-synchronous: when the
    default {!Gps_par.Pool} has more than one domain and a level's
    frontier is large enough, the level is expanded in parallel chunks
    merged with atomic bit test-and-set; smaller frontiers (and pools of
    size 1) take the sequential path, so interactive-scale graphs pay
    nothing for the machinery. Results are deterministic for any domain
    count.

    The [?domains] and [?par_threshold] parameters override the pool
    size ({!Gps_par.Pool.default_domains}) and the sequential-fallback
    frontier threshold for one call — benchmarks and the equivalence
    test-suite use them; normal callers leave both defaulted. *)

val select : ?domains:int -> ?par_threshold:int -> Gps_graph.Digraph.t -> Rpq.t -> bool array
(** [select g q].(v) iff [q] selects node [v]. *)

val select_frozen :
  ?domains:int ->
  ?par_threshold:int ->
  Gps_graph.Digraph.t ->
  Gps_graph.Csr.t ->
  Rpq.t ->
  bool array
(** Same answer over a prebuilt {!Gps_graph.Csr} snapshot of the same
    graph (passed alongside for label-name resolution) — skips the
    per-call freeze, the right entry point for repeated evaluation
    against one graph (the server's cold path, the learner's
    consistency oracle). The snapshot must be [Csr.freeze] of exactly
    this graph. *)

(** {2 EXPLAIN reports}

    Each evaluation can narrate itself: how big the product was, how the
    BFS frontier evolved level by level, which levels ran in parallel,
    and why the search stopped. The server's [explain] field and
    [gps query --explain] are both rendered from this record. *)

type level_stat = { frontier : int; parallel : bool }
(** One BFS level: frontier size and whether it was expanded by the
    domain pool ([parallel = false] is the sequential fallback). Level 1
    is the accepting-state seed frontier. *)

type level_perf = {
  lp_level : int;  (** 1-based BFS level, matching [report_levels] order *)
  lp_frontier : int;
  lp_chunks : int;
  lp_wall_ns : int;  (** whole level expansion: chunk setup, pool job, merge *)
  lp_barrier_ns : int;  (** the caller's wait after finishing its own chunks *)
  lp_busy_ns : int array;  (** per pool participant; slot 0 is the caller *)
  lp_chunks_by : int array;
  lp_wake_ns : int array;  (** wake-to-first-claim latency per participant *)
}
(** Scheduler telemetry for one {e parallel} level, present only when
    {!Gps_par.Pool.profiling} was on during the run ([gps query
    --explain] and [gps profile] turn it on; otherwise collection is
    skipped entirely — not a single extra clock read). *)

val level_imbalance : level_perf -> float
(** max busy / mean busy over participants, in [[1, domains]]; 1.0 is a
    perfectly balanced level, [domains] is one participant doing all
    the work. 1.0 when nothing was measured. *)

val level_busy_frac : level_perf -> float
(** sum busy / (wall × domains), in [[0, 1]]: the fraction of the
    level's parallel capacity spent inside chunk bodies. The rest is
    wake latency, barrier wait, chunk setup and frontier merge. *)

type stop_reason =
  | Empty_automaton  (** the query automaton has no states — nothing to run *)
  | Saturated  (** every product state was discovered *)
  | Frontier_exhausted  (** the frontier drained before saturation — the common case *)
  | Timed_out  (** the evaluation's {!Gps_obs.Deadline} expired mid-search *)
  | Cancelled  (** the evaluation's cancel token fired mid-search *)

type report = {
  automaton_states : int;
  graph_nodes : int;
  product_states : int;  (** [graph_nodes * automaton_states] *)
  frontier_visits : int;  (** product states expanded (queue pops) *)
  early_exit_hits : int;  (** re-discoveries skipped by the membership bitset *)
  par_levels : int;
  seq_fallbacks : int;  (** levels under [par_threshold] with a pool available *)
  domains_used : int;
  par_threshold : int;
  report_levels : level_stat list;  (** in BFS order *)
  efficiency : level_perf list;
      (** parallel levels only, BFS order; [[]] unless pool profiling
          was on (older servers' wire payloads also decode to [[]]) *)
  stop : stop_reason;
  selected : int;  (** how many nodes the query selects *)
}

val select_report :
  ?domains:int ->
  ?par_threshold:int ->
  Gps_graph.Digraph.t ->
  Rpq.t ->
  bool array * report
(** {!select}, plus the report of the evaluation that produced it. *)

val select_frozen_report :
  ?domains:int ->
  ?par_threshold:int ->
  Gps_graph.Digraph.t ->
  Gps_graph.Csr.t ->
  Rpq.t ->
  bool array * report
(** {!select_frozen}, plus its report. *)

val stop_reason_to_string : stop_reason -> string
(** ["empty-automaton"], ["saturated"], ["frontier-exhausted"],
    ["timed-out"], ["cancelled"]. *)

val stop_reason_of_string : string -> (stop_reason, string) result

(** {2 Deadlines and cancellation}

    The [_result] entry points take a {!Gps_obs.Deadline} token and poll
    it cooperatively — once per BFS level and every few hundred frontier
    visits inside a level, including inside parallel pool chunks. When it
    fires they stop promptly and return [Error] carrying the reason and
    the {e partial} EXPLAIN report of the work done so far (its [stop]
    field is [Timed_out]/[Cancelled], its [selected] count is the
    under-approximation discovered before the stop). Without a deadline
    ([Gps_obs.Deadline.none], the default) they are equivalent to their
    plain counterparts and the kernel's hot path is unchanged up to one
    branch per visit. *)

type interrupted = { reason : Gps_obs.Deadline.reason; partial : report }

val select_result :
  ?domains:int ->
  ?par_threshold:int ->
  ?deadline:Gps_obs.Deadline.t ->
  Gps_graph.Digraph.t ->
  Rpq.t ->
  (bool array, interrupted) result

val select_frozen_result :
  ?domains:int ->
  ?par_threshold:int ->
  ?deadline:Gps_obs.Deadline.t ->
  Gps_graph.Digraph.t ->
  Gps_graph.Csr.t ->
  Rpq.t ->
  (bool array, interrupted) result

val select_report_result :
  ?domains:int ->
  ?par_threshold:int ->
  ?deadline:Gps_obs.Deadline.t ->
  Gps_graph.Digraph.t ->
  Rpq.t ->
  (bool array * report, interrupted) result

val select_frozen_report_result :
  ?domains:int ->
  ?par_threshold:int ->
  ?deadline:Gps_obs.Deadline.t ->
  Gps_graph.Digraph.t ->
  Gps_graph.Csr.t ->
  Rpq.t ->
  (bool array * report, interrupted) result

(** {2 Out-of-core evaluation}

    The kernel is compiled once per adjacency backing (a functor over a
    minimal in-edge iteration interface), so evaluating against an
    mmap-backed {!Gps_graph.Disk_csr} view costs the same per edge as
    the heap CSR: an offset probe and a packed-cell read. A view whose
    delta overlay is empty takes the pure flat-array path; with an
    overlay, each node's base range is walked first and the overlay
    adjacency appended. *)

type source =
  | Frozen of Gps_graph.Digraph.t * Gps_graph.Csr.t
      (** A heap graph with its frozen snapshot (the snapshot must be
          [Csr.freeze] of exactly that graph). *)
  | Mapped of Gps_graph.Disk_csr.view
      (** An mmap-backed packed graph, delta overlay included. *)

val select_mapped :
  ?domains:int -> ?par_threshold:int -> Gps_graph.Disk_csr.view -> Rpq.t -> bool array
(** {!select} against a mapped view; index [v] of the result is the
    node with id [v] (overlay nodes included, past the base count). *)

val select_mapped_report :
  ?domains:int ->
  ?par_threshold:int ->
  Gps_graph.Disk_csr.view ->
  Rpq.t ->
  bool array * report

val select_source_report_result :
  ?domains:int ->
  ?par_threshold:int ->
  ?deadline:Gps_obs.Deadline.t ->
  source ->
  Rpq.t ->
  (bool array * report, interrupted) result
(** The backing-generic entry point the server routes through: same
    kernel, same deadline semantics as {!select_frozen_report_result}. *)

val report_to_json : report -> Gps_graph.Json.value
val report_of_json : Gps_graph.Json.value -> (report, string) result
(** Total codec: [report_of_json (report_to_json r) = Ok r]. *)

val pp_report : Format.formatter -> report -> unit
(** An aligned key/value block for terminals; levels render as
    ["1:12p 2:40s"] (index:frontier, [p]arallel / [s]equential). *)

val select_via_dfa :
  ?domains:int -> ?par_threshold:int -> Gps_graph.Digraph.t -> Rpq.t -> bool array
(** Same answer computed against the determinized-and-minimized query
    automaton instead of the NFA. A smaller automaton shrinks the product,
    but determinization can blow the automaton up — the [--exp eval]
    ablation of the benchmark harness measures this trade-off. *)

val select_nodes : Gps_graph.Digraph.t -> Rpq.t -> Gps_graph.Digraph.node list
(** Selected nodes in ascending id order. *)

val selects : Gps_graph.Digraph.t -> Rpq.t -> Gps_graph.Digraph.node -> bool

val consistent :
  Gps_graph.Digraph.t ->
  Rpq.t ->
  pos:Gps_graph.Digraph.node list ->
  neg:Gps_graph.Digraph.node list ->
  bool
(** The query selects every positive node and no negative one — the
    paper's consistency criterion (a negative node "covers" a word iff the
    word is one of its paths, so "no negative covered" is exactly "no
    negative selected"). *)

val count : Gps_graph.Digraph.t -> Rpq.t -> int

val witness_lengths :
  ?domains:int -> ?par_threshold:int -> Gps_graph.Digraph.t -> Rpq.t -> int option array
(** Per node, the length of its shortest witness word ([None] when not
    selected) — all nodes in one backward BFS (the same kernel, with
    per-level distances), used to rank answers by how direct they are.
    Agrees with the length of {!Witness.find}'s result. *)

val product_states : Gps_graph.Digraph.t -> Rpq.t -> int
(** |V| · |Q| — reported by the benchmark harness. *)
