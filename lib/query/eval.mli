(** RPQ evaluation: which nodes does a query select?

    A node [v] is selected iff in the product of the graph with the query
    NFA some accepting product state is reachable from [(v, q0)] for a
    start state [q0]. Evaluation runs one {e backward} BFS from all
    accepting product states over reversed product edges, which answers
    the question for {e every} node simultaneously in
    O(|E| · |Δ| + |V| · |Q|) — this is the engine behind every
    interaction of the system, so it must stay graph-linear.

    {2 The kernel}

    Every entry point below routes through one shared, cache-tight
    kernel: a frozen {!Gps_graph.Csr} adjacency snapshot, a flat
    CSR-style reverse transition index keyed by [(label, state)] (no
    per-edge transition-list filtering), {!Gps_graph.Bitset} membership
    tables (one bit per product state), and int-encoded product states
    in a flat array queue. The BFS is level-synchronous: when the
    default {!Gps_par.Pool} has more than one domain and a level's
    frontier is large enough, the level is expanded in parallel chunks
    merged with atomic bit test-and-set; smaller frontiers (and pools of
    size 1) take the sequential path, so interactive-scale graphs pay
    nothing for the machinery. Results are deterministic for any domain
    count.

    The [?domains] and [?par_threshold] parameters override the pool
    size ({!Gps_par.Pool.default_domains}) and the sequential-fallback
    frontier threshold for one call — benchmarks and the equivalence
    test-suite use them; normal callers leave both defaulted. *)

val select : ?domains:int -> ?par_threshold:int -> Gps_graph.Digraph.t -> Rpq.t -> bool array
(** [select g q].(v) iff [q] selects node [v]. *)

val select_frozen :
  ?domains:int ->
  ?par_threshold:int ->
  Gps_graph.Digraph.t ->
  Gps_graph.Csr.t ->
  Rpq.t ->
  bool array
(** Same answer over a prebuilt {!Gps_graph.Csr} snapshot of the same
    graph (passed alongside for label-name resolution) — skips the
    per-call freeze, the right entry point for repeated evaluation
    against one graph (the server's cold path, the learner's
    consistency oracle). The snapshot must be [Csr.freeze] of exactly
    this graph. *)

val select_via_dfa :
  ?domains:int -> ?par_threshold:int -> Gps_graph.Digraph.t -> Rpq.t -> bool array
(** Same answer computed against the determinized-and-minimized query
    automaton instead of the NFA. A smaller automaton shrinks the product,
    but determinization can blow the automaton up — the [--exp eval]
    ablation of the benchmark harness measures this trade-off. *)

val select_nodes : Gps_graph.Digraph.t -> Rpq.t -> Gps_graph.Digraph.node list
(** Selected nodes in ascending id order. *)

val selects : Gps_graph.Digraph.t -> Rpq.t -> Gps_graph.Digraph.node -> bool

val consistent :
  Gps_graph.Digraph.t ->
  Rpq.t ->
  pos:Gps_graph.Digraph.node list ->
  neg:Gps_graph.Digraph.node list ->
  bool
(** The query selects every positive node and no negative one — the
    paper's consistency criterion (a negative node "covers" a word iff the
    word is one of its paths, so "no negative covered" is exactly "no
    negative selected"). *)

val count : Gps_graph.Digraph.t -> Rpq.t -> int

val witness_lengths :
  ?domains:int -> ?par_threshold:int -> Gps_graph.Digraph.t -> Rpq.t -> int option array
(** Per node, the length of its shortest witness word ([None] when not
    selected) — all nodes in one backward BFS (the same kernel, with
    per-level distances), used to rank answers by how direct they are.
    Agrees with the length of {!Witness.find}'s result. *)

val product_states : Gps_graph.Digraph.t -> Rpq.t -> int
(** |V| · |Q| — reported by the benchmark harness. *)
