(** The GPS interactive scenario (the paper's Figure 2), as a pure state
    machine.

    The session repeatedly: picks an informative node with the strategy Υ,
    shows its neighborhood (zoomable), collects a +/− label, for positives
    collects the validated path of interest from the prefix tree, then
    propagates labels, prunes uninformative nodes, re-learns a hypothesis
    and proposes it. The loop ends when the user is satisfied, when no
    informative node remains, when the interaction budget runs out, or
    when the labeling turned out inconsistent.

    The machine is immutable and driven by typed answers, so front ends
    (terminal, simulated users, tests) all share it. *)

type config = {
  initial_radius : int;  (** neighborhood radius first shown; paper uses 2 *)
  bound : int;           (** path-length bound for informativeness/pruning *)
  learn_fuel : int;      (** witness-search fuel per learner run *)
  max_questions : int option;
      (** budget on user answers (labels + zooms + validations); a hard
          cap — the session finishes the moment it is reached, even
          mid-round *)
  prefer_suggestion : [ `Longest | `Shortest ];
      (** which candidate path the system highlights (the paper argues
          for [`Longest]; [`Shortest] is the benchmark ablation) *)
}

val default_config : config
(** radius 2, bound 4, fuel 100_000, no budget, longest-path
    suggestions. *)

type halt_reason =
  | Satisfied            (** the user accepted the proposed query *)
  | No_informative_nodes (** nothing left to ask — the hypothesis is final *)
  | Budget_exhausted
  | Inconsistent of Gps_learning.Learner.failure
  | Interrupted of Gps_obs.Deadline.reason
      (** the caller's deadline/cancel token fired during a re-learn; the
          outcome carries the last complete hypothesis *)

type outcome = { query : Gps_query.Rpq.t; reason : halt_reason }

type request =
  | Ask_label of View.neighborhood
      (** answer with {!answer_label} *)
  | Ask_path of View.path_tree
      (** answer with {!answer_path} *)
  | Propose of Gps_query.Rpq.t
      (** the current hypothesis; answer with {!accept} or {!refine} *)
  | Finished of outcome

type t

val start : ?config:config -> strategy:Strategy.t -> Gps_graph.Digraph.t -> t

val request : t -> request

val answer_label : ?deadline:Gps_obs.Deadline.t -> t -> [ `Pos | `Neg | `Zoom ] -> t
(** @raise Invalid_argument if the pending request is not [Ask_label].
    [`Zoom] on an already-complete fragment is a no-op (re-issues the same
    view). [deadline] bounds the re-learn this answer may trigger; when it
    fires the session finishes with [Interrupted]. *)

val answer_path : ?deadline:Gps_obs.Deadline.t -> t -> string list -> t
(** @raise Invalid_argument if the pending request is not [Ask_path] or
    the word is not among the tree's candidates. [deadline] as in
    {!answer_label}. *)

val accept : t -> t
(** The user is satisfied with the proposed query; finishes the session.
    @raise Invalid_argument outside [Propose]. *)

val refine : t -> t
(** Keep going after a proposal. @raise Invalid_argument outside
    [Propose]. *)

(** {1 Introspection} *)

val graph : t -> Gps_graph.Digraph.t
val sample : t -> Gps_learning.Sample.t
val hypothesis : t -> Gps_query.Rpq.t option
val implied_pos : t -> Gps_graph.Digraph.node list
val implied_neg : t -> Gps_graph.Digraph.node list
(** The pruned set. *)

type counters = {
  labels : int;       (** +/− answers given *)
  zooms : int;
  validations : int;
  proposals : int;    (** hypotheses shown *)
  learner_runs : int;
}

val counters : t -> counters

val questions : t -> int
(** [labels + zooms + validations] — the paper's "number of interactions"
    measure. *)
