(** Session journals: record a user's answers, replay them later.

    A journal is the pure answer stream of one session — enough to
    reproduce it bit-for-bit on the same graph with the same strategy and
    configuration (the engine is deterministic given those). Used to
    persist demo sessions, turn real interactive runs into regression
    tests, and debug strategy changes against recorded users. *)

type answer =
  | Label of string option * [ `Pos | `Neg | `Zoom ]
      (** the node name shown (recorded for readability; checked on replay
          when present) *)
  | Validate of string option * string list
  | Satisfied of string * bool  (** proposed query text, user's verdict *)

type t = answer list

val recording : Oracle.user -> Oracle.user * (unit -> t)
(** Wrap a user; the thunk returns everything answered so far (oldest
    first). *)

val replayer : ?strict:bool -> t -> Oracle.user
(** A user that replays the journal in order.
    @raise Failure when the journal runs out, or — with [strict] (default
    true) — when the session asks about a different node than the one
    recorded. *)

val answer_to_json : answer -> Gps_graph.Json.value
val answer_of_json : Gps_graph.Json.value -> (answer, string) result
(** Single-entry codec, for embedding answers in other record streams
    (the server's durability journal frames one answer per WAL record). *)

val to_json : t -> string
val of_json : string -> (t, string) result

val save : string -> t -> unit
val load : string -> (t, string) result
