module Digraph = Gps_graph.Digraph
module Neighborhood = Gps_graph.Neighborhood
module Sample = Gps_learning.Sample
module Learner = Gps_learning.Learner
module Rpq = Gps_query.Rpq
module Iset = Set.Make (Int)
module Counter = Gps_obs.Counter
module Trace = Gps_obs.Trace
module Deadline = Gps_obs.Deadline

let c_steps = Counter.make "session.steps"
let c_relearns = Counter.make "session.relearns"
let c_pruned = Counter.make "session.nodes_pruned"

type config = {
  initial_radius : int;
  bound : int;
  learn_fuel : int;
  max_questions : int option;
  prefer_suggestion : [ `Longest | `Shortest ];
}

let default_config =
  {
    initial_radius = 2;
    bound = 4;
    learn_fuel = 100_000;
    max_questions = None;
    prefer_suggestion = `Longest;
  }

type halt_reason =
  | Satisfied
  | No_informative_nodes
  | Budget_exhausted
  | Inconsistent of Learner.failure
  | Interrupted of Deadline.reason

type outcome = { query : Rpq.t; reason : halt_reason }

type request =
  | Ask_label of View.neighborhood
  | Ask_path of View.path_tree
  | Propose of Rpq.t
  | Finished of outcome

type counters = {
  labels : int;
  zooms : int;
  validations : int;
  proposals : int;
  learner_runs : int;
}

let zero_counters = { labels = 0; zooms = 0; validations = 0; proposals = 0; learner_runs = 0 }

type t = {
  graph : Digraph.t;
  config : config;
  strategy : Strategy.t;
  sample : Sample.t;
  implied_pos : Iset.t;
  implied_neg : Iset.t;
  hypothesis : Rpq.t option;
  pending : request;
  counters : counters;
}

let graph t = t.graph
let sample t = t.sample
let hypothesis t = t.hypothesis
let implied_pos t = Iset.elements t.implied_pos
let implied_neg t = Iset.elements t.implied_neg
let counters t = t.counters
let questions t = t.counters.labels + t.counters.zooms + t.counters.validations
let request t = t.pending

let empty_query = Rpq.of_regex Gps_regex.Regex.empty

let current_query t = Option.value t.hypothesis ~default:empty_query

let finish t reason = { t with pending = Finished { query = current_query t; reason } }

let strategy_context t =
  {
    Strategy.graph = t.graph;
    excluded =
      (fun v -> Sample.is_labeled t.sample v || Iset.mem v t.implied_pos || Iset.mem v t.implied_neg);
    negatives = Sample.neg t.sample;
    bound = t.config.bound;
  }

let over_budget t =
  match t.config.max_questions with Some b -> questions t >= b | None -> false

(* The budget is a hard cap on user answers: the moment it is reached the
   session finishes with the current hypothesis, even mid-round. *)
let guard_budget t =
  match t.pending with
  | Finished _ -> t
  | Ask_label _ | Ask_path _ | Propose _ -> if over_budget t then finish t Budget_exhausted else t

(* Pick the next node to ask about, or finish. *)
let next_question t =
  if over_budget t then finish t Budget_exhausted
  else
    match t.strategy.Strategy.choose (strategy_context t) with
    | None -> finish t No_informative_nodes
    | Some v ->
        {
          t with
          pending = Ask_label (View.make_neighborhood t.graph v ~radius:t.config.initial_radius);
        }

(* Re-learn from the current sample and move to the proposal step. A
   deadline firing mid-learn finishes the session with the previous
   hypothesis rather than poisoning the sample state. *)
let relearn ?deadline t =
  Counter.incr c_relearns;
  let t = { t with counters = { t.counters with learner_runs = t.counters.learner_runs + 1 } } in
  match Learner.learn ~fuel:t.config.learn_fuel ?deadline t.graph t.sample with
  | Learner.Learned q -> { t with hypothesis = Some q; pending = Propose q }
  | Learner.Failed (Learner.Interrupted r) -> finish t (Interrupted r)
  | Learner.Failed f -> finish t (Inconsistent f)

let prune t =
  let unlabeled =
    List.filter
      (fun v ->
        (not (Sample.is_labeled t.sample v))
        && (not (Iset.mem v t.implied_pos))
        && not (Iset.mem v t.implied_neg))
      (Digraph.nodes t.graph)
  in
  let newly =
    Propagate.implied_negatives t.graph ~negatives:(Sample.neg t.sample) ~bound:t.config.bound
      ~among:unlabeled
  in
  Counter.add c_pruned (List.length newly);
  { t with implied_neg = List.fold_left (fun s v -> Iset.add v s) t.implied_neg newly }

let start ?(config = default_config) ~strategy g =
  Trace.with_span "session.start" @@ fun _sp ->
  let t =
    {
      graph = g;
      config;
      strategy;
      sample = Sample.empty;
      implied_pos = Iset.empty;
      implied_neg = Iset.empty;
      hypothesis = None;
      pending = Finished { query = empty_query; reason = No_informative_nodes };
      counters = zero_counters;
    }
  in
  next_question t

let bump_labels t = { t with counters = { t.counters with labels = t.counters.labels + 1 } }
let bump_zooms t = { t with counters = { t.counters with zooms = t.counters.zooms + 1 } }

let bump_validations t =
  { t with counters = { t.counters with validations = t.counters.validations + 1 } }

let bump_proposals t =
  { t with counters = { t.counters with proposals = t.counters.proposals + 1 } }

(* Build the validation tree for a freshly labeled positive node. The word
   bound is the radius the user last saw; if no candidate fits in it (she
   answered early), fall back to the informativeness bound, which is
   guaranteed to contain one for a node the strategy proposed. *)
let path_tree_for t view =
  let negatives = Sample.neg t.sample in
  let prefer = t.config.prefer_suggestion in
  let radius = view.View.fragment.Neighborhood.radius in
  match View.make_path_tree t.graph ~prefer view.View.node ~negatives ~max_len:radius with
  | Some tree -> Some tree
  | None -> View.make_path_tree t.graph ~prefer view.View.node ~negatives ~max_len:t.config.bound

let answer_label ?deadline t reply =
  Trace.with_span "session.answer_label" @@ fun sp ->
  Trace.set_str sp "reply" (match reply with `Pos -> "pos" | `Neg -> "neg" | `Zoom -> "zoom");
  match t.pending with
  | Ask_label view ->
      Counter.incr c_steps;
      (
      match reply with
      | `Zoom ->
          let t = bump_zooms t in
          guard_budget
            (if Neighborhood.is_complete t.graph view.View.fragment then t
             else
               let fragment = view.View.fragment in
               let zoomed =
                 View.make_neighborhood t.graph ~previous:fragment view.View.node
                   ~radius:(fragment.Neighborhood.radius + 1)
               in
               { t with pending = Ask_label zoomed })
      | `Neg ->
          let t = bump_labels t in
          let t = { t with sample = Sample.add_neg t.sample view.View.node } in
          guard_budget (relearn ?deadline (prune t))
      | `Pos -> (
          let t = bump_labels t in
          let t = { t with sample = Sample.add_pos t.sample view.View.node } in
          if over_budget t then
            (* no room to ask for validation; learn from the bare label *)
            guard_budget (relearn ?deadline t)
          else
            match path_tree_for t view with
            | Some tree -> { t with pending = Ask_path tree }
            | None ->
                (* No uncovered path at all: the labeling is contradictory. *)
                finish t (Inconsistent (Learner.Conflicting_node view.View.node))))
  | Ask_path _ | Propose _ | Finished _ ->
      invalid_arg "Session.answer_label: no label question pending"

let answer_path ?deadline t word =
  Trace.with_span "session.answer_path" @@ fun _sp ->
  match t.pending with
  | Ask_path tree ->
      Counter.incr c_steps;
      if not (List.mem word tree.View.words) then
        invalid_arg "Session.answer_path: word is not one of the proposed candidates"
      else begin
        let t = bump_validations t in
        let t = { t with sample = Sample.validate t.sample tree.View.node word } in
        (* every node having this path is implied positive *)
        let implied = Propagate.implied_positives t.graph ~word in
        let implied_pos =
          List.fold_left
            (fun s v -> if Sample.is_labeled t.sample v then s else Iset.add v s)
            t.implied_pos implied
        in
        guard_budget (relearn ?deadline (prune { t with implied_pos }))
      end
  | Ask_label _ | Propose _ | Finished _ ->
      invalid_arg "Session.answer_path: no path validation pending"

let accept t =
  Trace.with_span "session.accept" @@ fun _sp ->
  match t.pending with
  | Propose _ ->
      Counter.incr c_steps;
      finish (bump_proposals t) Satisfied
  | Ask_label _ | Ask_path _ | Finished _ -> invalid_arg "Session.accept: no proposal pending"

let refine t =
  Trace.with_span "session.refine" @@ fun _sp ->
  match t.pending with
  | Propose _ ->
      Counter.incr c_steps;
      next_question (bump_proposals t)
  | Ask_label _ | Ask_path _ | Finished _ -> invalid_arg "Session.refine: no proposal pending"
