module Digraph = Gps_graph.Digraph
module Rpq = Gps_query.Rpq

type event =
  | Shown of { node : Digraph.node; radius : int; reply : [ `Pos | `Neg | `Zoom ] }
  | Validated of { node : Digraph.node; candidates : int; word : string list }
  | Proposed of { query : Rpq.t; accepted : bool }
  | Halted of Session.outcome

type t = event list

let record ?config ?(max_steps = 100_000) g ~strategy ~user =
  let rec loop t events steps =
    if steps > max_steps then failwith "Transcript.record: step budget exceeded"
    else
      match Session.request t with
      | Session.Finished outcome -> List.rev (Halted outcome :: events)
      | Session.Ask_label view ->
          let reply = user.Oracle.label g view in
          let ev =
            Shown
              {
                node = view.View.node;
                radius = view.View.fragment.Gps_graph.Neighborhood.radius;
                reply;
              }
          in
          loop (Session.answer_label t reply) (ev :: events) (steps + 1)
      | Session.Ask_path tree ->
          let word = user.Oracle.validate g tree in
          let ev =
            Validated
              { node = tree.View.node; candidates = List.length tree.View.words; word }
          in
          loop (Session.answer_path t word) (ev :: events) (steps + 1)
      | Session.Propose query ->
          let accepted = user.Oracle.satisfied g query in
          let t = if accepted then Session.accept t else Session.refine t in
          loop t (Proposed { query; accepted } :: events) (steps + 1)
  in
  loop (Session.start ?config ~strategy g) [] 0

let outcome t =
  List.fold_left (fun acc ev -> match ev with Halted o -> Some o | _ -> acc) None t

let render g t =
  let buf = Buffer.create 512 in
  List.iteri
    (fun i ev ->
      let line =
        match ev with
        | Shown { node; radius; reply } ->
            Printf.sprintf "show neighborhood of %s (radius %d); user: %s"
              (Digraph.node_name g node) radius
              (match reply with `Pos -> "YES" | `Neg -> "NO" | `Zoom -> "zoom out")
        | Validated { node; candidates; word } ->
            Printf.sprintf "propose %d candidate paths of %s; user validates %s" candidates
              (Digraph.node_name g node) (String.concat "." word)
        | Proposed { query; accepted } ->
            Printf.sprintf "learner proposes %s; user %s" (Rpq.to_string query)
              (if accepted then "accepts" else "asks to continue")
        | Halted o ->
            Printf.sprintf "HALT (%s) -> learned %s"
              (match o.Session.reason with
              | Session.Satisfied -> "user satisfied"
              | Session.No_informative_nodes -> "no informative nodes"
              | Session.Budget_exhausted -> "budget exhausted"
              | Session.Inconsistent _ -> "inconsistent"
              | Session.Interrupted r ->
                  "interrupted: " ^ Gps_obs.Deadline.reason_to_string r)
              (Rpq.to_string o.Session.query)
      in
      Buffer.add_string buf (Printf.sprintf "%2d. %s\n" (i + 1) line))
    t;
  Buffer.contents buf
