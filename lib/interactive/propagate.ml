module Digraph = Gps_graph.Digraph
module Counter = Gps_obs.Counter
module Trace = Gps_obs.Trace

let c_pos = Counter.make "propagate.implied_pos"
let c_neg = Counter.make "propagate.implied_neg"

let implied_positives g ~word =
  Trace.with_span "propagate.positives" @@ fun sp ->
  let implied = List.filter (fun v -> Gps_query.Pathlang.covers g [ v ] word) (Digraph.nodes g) in
  Counter.add c_pos (List.length implied);
  Trace.set_int sp "implied" (List.length implied);
  implied

let implied_negatives g ~negatives ~bound ~among =
  Trace.with_span "propagate.negatives" @@ fun sp ->
  let implied =
    List.filter (fun v -> not (Informative.is_informative g ~negatives ~bound v)) among
  in
  Counter.add c_neg (List.length implied);
  Trace.set_int sp "implied" (List.length implied);
  Trace.set_int sp "among" (List.length among);
  implied
