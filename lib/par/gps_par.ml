(** Multicore substrate: the Domain-based work pool behind the parallel
    phase of the evaluation kernel. Kept dependency-free so every layer
    (query, learning, server, bench) can reach it. *)

module Pool = Pool
