(** A small Domain-based work pool.

    One pool owns [domains - 1] long-lived worker domains plus the
    calling domain; {!run} hands them a job of [chunks] independent
    pieces claimed off a shared atomic counter (a chunk queue guarded by
    one [Mutex]/[Condition] pair for sleep/wake, lock-free for chunk
    claiming). The pool is the engine behind the parallel phase of
    {!Gps_query.Eval}'s product BFS; its only dependency beyond the
    OCaml 5 standard library is {!Gps_obs} — the process's one
    monotonic clock and the metric registries its profiling reports
    into.

    Sizing: the default pool is sized by the first of
    + an explicit {!set_default_domains} (the CLI's [--domains N]),
    + the [GPS_DOMAINS] environment variable,
    + [Domain.recommended_domain_count ()].

    A pool of size 1 spawns no workers and {!run} degenerates to an
    inline [for] loop — small interactive graphs pay nothing.

    Thread-safety: {!run} may be called from any systhread or domain;
    concurrent calls on the same pool serialize (one job at a time).
    Recursive {!run} from inside a chunk is not supported. *)

type t

val create : domains:int -> t
(** Spawn a pool of [domains] total participants ([domains - 1] worker
    domains). @raise Invalid_argument if [domains < 1]. *)

val size : t -> int
(** The [domains] the pool was created with. *)

val run : t -> chunks:int -> (int -> unit) -> unit
(** [run t ~chunks f] executes [f 0 .. f (chunks - 1)], each exactly
    once, distributed over the pool (the caller participates). Returns
    when every chunk has finished. If one or more chunks raise, the
    first exception recorded is re-raised in the caller (with its
    backtrace) after all chunks have completed; the pool remains
    usable. *)

val shutdown : t -> unit
(** Stop and join the workers. Idempotent. Subsequent {!run}s of more
    than one chunk raise [Invalid_argument]. *)

(** {1 Profiling}

    A process-wide switch, sampled once per job: when off (the
    default) {!run} takes {e no} clock reads and allocates no stats —
    the claim/execute loop is byte-for-byte the unprofiled one. When
    on, every participant stamps a private slot (single-writer, no
    contention): chunks claimed, ns spent inside chunks, and
    wake-to-first-claim latency from job installation. Aggregates
    feed the registry ([pool.jobs], [pool.chunks], [pool.busy_ns],
    [pool.idle_ns], [pool.barrier_ns] counters; [pool.wake_latency_ns]
    and [pool.barrier_wait_ns] histograms); per-job detail is returned
    by {!run_stats} for callers building per-level reports. *)

val set_profiling : bool -> unit
(** Turn per-job telemetry on or off, process-wide (affects every
    pool). Sampled at the start of each job. *)

val profiling : unit -> bool

type worker_stat = {
  chunks : int;  (** chunks this participant claimed *)
  busy_ns : int;  (** ns spent inside chunk bodies *)
  wake_ns : int;
      (** installation → first claim latency; 0 for the caller and for
          workers that claimed nothing *)
}

type job_stats = {
  job_wall_ns : int;  (** installation → last chunk completed *)
  job_barrier_ns : int;
      (** caller's wait after finishing its own chunks (0 on the
          inline path) *)
  workers : worker_stat array;
      (** one per participant; index 0 is the caller, [i >= 1] the
          [i]-th worker domain. On the inline path (pool of 1, or a
          single chunk) only slot 0 is populated. *)
}

val run_stats : t -> chunks:int -> (int -> unit) -> job_stats option
(** {!run}, returning the job's telemetry when profiling was enabled
    at the moment the job started ([None] otherwise, and [None] for
    [chunks = 0]). Chunk accounting is exact: the [chunks] fields of
    the result always sum to [chunks], even when some participants
    claim nothing. *)

(** {1 The shared default pool} *)

val default_domains : unit -> int
(** Resolution order: {!set_default_domains} override, then
    [GPS_DOMAINS] (positive integer), then
    [Domain.recommended_domain_count ()]. *)

val set_default_domains : int -> unit
(** Process-wide override (the CLI's [--domains]). Takes effect on the
    next {!instance} lookup. @raise Invalid_argument if [< 1]. *)

val get : int -> t
(** [get n] is a process-wide cached pool of [n] domains, created on
    first use and reused forever after (pools are never reaped — the
    set of distinct sizes in a process is tiny). *)

val instance : unit -> t
(** [get (default_domains ())]. *)
