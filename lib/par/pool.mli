(** A small Domain-based work pool.

    One pool owns [domains - 1] long-lived worker domains plus the
    calling domain; {!run} hands them a job of [chunks] independent
    pieces claimed off a shared atomic counter (a chunk queue guarded by
    one [Mutex]/[Condition] pair for sleep/wake, lock-free for chunk
    claiming). The pool is the engine behind the parallel phase of
    {!Gps_query.Eval}'s product BFS; it deliberately has {e no}
    dependencies beyond the OCaml 5 standard library.

    Sizing: the default pool is sized by the first of
    + an explicit {!set_default_domains} (the CLI's [--domains N]),
    + the [GPS_DOMAINS] environment variable,
    + [Domain.recommended_domain_count ()].

    A pool of size 1 spawns no workers and {!run} degenerates to an
    inline [for] loop — small interactive graphs pay nothing.

    Thread-safety: {!run} may be called from any systhread or domain;
    concurrent calls on the same pool serialize (one job at a time).
    Recursive {!run} from inside a chunk is not supported. *)

type t

val create : domains:int -> t
(** Spawn a pool of [domains] total participants ([domains - 1] worker
    domains). @raise Invalid_argument if [domains < 1]. *)

val size : t -> int
(** The [domains] the pool was created with. *)

val run : t -> chunks:int -> (int -> unit) -> unit
(** [run t ~chunks f] executes [f 0 .. f (chunks - 1)], each exactly
    once, distributed over the pool (the caller participates). Returns
    when every chunk has finished. If one or more chunks raise, the
    first exception recorded is re-raised in the caller (with its
    backtrace) after all chunks have completed; the pool remains
    usable. *)

val shutdown : t -> unit
(** Stop and join the workers. Idempotent. Subsequent {!run}s of more
    than one chunk raise [Invalid_argument]. *)

(** {1 The shared default pool} *)

val default_domains : unit -> int
(** Resolution order: {!set_default_domains} override, then
    [GPS_DOMAINS] (positive integer), then
    [Domain.recommended_domain_count ()]. *)

val set_default_domains : int -> unit
(** Process-wide override (the CLI's [--domains]). Takes effect on the
    next {!instance} lookup. @raise Invalid_argument if [< 1]. *)

val get : int -> t
(** [get n] is a process-wide cached pool of [n] domains, created on
    first use and reused forever after (pools are never reaped — the
    set of distinct sizes in a process is tiny). *)

val instance : unit -> t
(** [get (default_domains ())]. *)
