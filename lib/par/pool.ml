(* One job at a time: chunks are claimed lock-free off [next]; the
   mutex/condition pair only puts workers to sleep between jobs and
   wakes the caller on completion. Workers are long-lived — spawning a
   domain costs far more than a BFS level, so the pool amortizes it.

   Profiling is an ambient, process-wide switch sampled once per job
   into [job.prof]: when off (the default) the job carries no stats
   record and [execute] takes no clock reads — the hot claim/run loop
   is exactly the unprofiled one. When on, each participant stamps its
   own slot of a per-job array (single-writer, no contention): chunks
   claimed, busy ns inside [f], and wake-to-first-claim latency
   measured from job installation. *)

module Clock = Gps_obs.Clock
module Counter = Gps_obs.Counter
module Histogram = Gps_obs.Histogram

let c_jobs = Counter.make "pool.jobs"
let c_chunks = Counter.make "pool.chunks"
let c_busy_ns = Counter.make "pool.busy_ns"
let c_idle_ns = Counter.make "pool.idle_ns"
let c_barrier_ns = Counter.make "pool.barrier_ns"
let h_wake = Histogram.make "pool.wake_latency_ns"
let h_barrier = Histogram.make "pool.barrier_wait_ns"

let profiling_flag = Atomic.make false
let set_profiling b = Atomic.set profiling_flag b
let profiling () = Atomic.get profiling_flag

type worker_stat = { chunks : int; busy_ns : int; wake_ns : int }

type job_stats = {
  job_wall_ns : int;
  job_barrier_ns : int;
  workers : worker_stat array;
}

(* Mutable per-participant slots; each is written by exactly one
   domain while the job runs, read by the caller after the barrier. *)
type wstat = {
  mutable w_chunks : int;
  mutable w_busy_ns : int;
  mutable w_wake_ns : int;
}

type prof = { installed_ns : int64; slots : wstat array }

type job = {
  f : int -> unit;
  total : int;
  next : int Atomic.t;  (* next unclaimed chunk *)
  mutable completed : int;  (* guarded by the pool mutex *)
  prof : prof option;
}

type t = {
  domains : int;
  mutex : Mutex.t;
  work : Condition.t;  (* a new job was installed (or shutdown) *)
  finished : Condition.t;  (* the current job's last chunk completed *)
  run_lock : Mutex.t;  (* serializes concurrent [run] callers *)
  mutable job : job option;
  mutable generation : int;  (* bumped per job, so workers never re-run one *)
  mutable failure : (exn * Printexc.raw_backtrace) option;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

(* Claim and execute chunks until the job is drained. Runs on workers
   and on the caller alike; [who] is this participant's stats slot
   (0 = the caller). The first exception is kept; every chunk still
   counts toward completion so the caller never deadlocks. *)
let execute t (j : job) ~who =
  let rec go () =
    let i = Atomic.fetch_and_add j.next 1 in
    if i < j.total then begin
      (match j.prof with
      | None -> (
          try j.f i
          with e ->
            let bt = Printexc.get_raw_backtrace () in
            Mutex.lock t.mutex;
            if t.failure = None then t.failure <- Some (e, bt);
            Mutex.unlock t.mutex)
      | Some p ->
          let s = p.slots.(who) in
          let t0 = Clock.now_ns () in
          if s.w_chunks = 0 then
            s.w_wake_ns <- Int64.to_int (Int64.sub t0 p.installed_ns);
          (try j.f i
           with e ->
             let bt = Printexc.get_raw_backtrace () in
             Mutex.lock t.mutex;
             if t.failure = None then t.failure <- Some (e, bt);
             Mutex.unlock t.mutex);
          s.w_chunks <- s.w_chunks + 1;
          s.w_busy_ns <- s.w_busy_ns + Int64.to_int (Int64.sub (Clock.now_ns ()) t0));
      Mutex.lock t.mutex;
      j.completed <- j.completed + 1;
      if j.completed = j.total then Condition.broadcast t.finished;
      Mutex.unlock t.mutex;
      go ()
    end
  in
  go ()

let worker t idx () =
  let last_gen = ref 0 in
  Mutex.lock t.mutex;
  let rec loop () =
    if t.stop then Mutex.unlock t.mutex
    else
      match t.job with
      | Some j when t.generation <> !last_gen ->
          last_gen := t.generation;
          Mutex.unlock t.mutex;
          execute t j ~who:idx;
          Mutex.lock t.mutex;
          loop ()
      | _ ->
          Condition.wait t.work t.mutex;
          loop ()
  in
  loop ()

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let t =
    {
      domains;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      run_lock = Mutex.create ();
      job = None;
      generation = 0;
      failure = None;
      stop = false;
      workers = [];
    }
  in
  (* Worker [i] owns stats slot [i + 1]; slot 0 is the caller's. *)
  t.workers <- List.init (domains - 1) (fun i -> Domain.spawn (worker t (i + 1)));
  t

let size t = t.domains

let finalize_stats ~wall_ns ~barrier_ns (p : prof) =
  let workers =
    Array.map
      (fun s -> { chunks = s.w_chunks; busy_ns = s.w_busy_ns; wake_ns = s.w_wake_ns })
      p.slots
  in
  let busy = Array.fold_left (fun acc w -> acc + w.busy_ns) 0 workers in
  let wake = Array.fold_left (fun acc w -> acc + w.wake_ns) 0 workers in
  let chunks = Array.fold_left (fun acc w -> acc + w.chunks) 0 workers in
  Counter.incr c_jobs;
  Counter.add c_chunks chunks;
  Counter.add c_busy_ns busy;
  Counter.add c_idle_ns (max 0 ((wall_ns * Array.length workers) - busy - wake));
  Counter.add c_barrier_ns barrier_ns;
  Histogram.record h_barrier barrier_ns;
  Array.iter (fun w -> if w.chunks > 0 && w.wake_ns > 0 then Histogram.record h_wake w.wake_ns) workers;
  { job_wall_ns = wall_ns; job_barrier_ns = barrier_ns; workers }

let run_stats t ~chunks f =
  if chunks < 0 then invalid_arg "Pool.run: negative chunks"
  else if chunks = 0 then None
  else begin
    let prof =
      if Atomic.get profiling_flag then
        Some
          {
            installed_ns = Clock.now_ns ();
            slots = Array.init t.domains (fun _ -> { w_chunks = 0; w_busy_ns = 0; w_wake_ns = 0 });
          }
      else None
    in
    if t.domains = 1 || chunks = 1 then begin
      (* no coordination: the caller is the whole pool *)
      match prof with
      | None ->
          for i = 0 to chunks - 1 do
            f i
          done;
          None
      | Some p ->
          let t0 = Clock.now_ns () in
          for i = 0 to chunks - 1 do
            f i
          done;
          let s = p.slots.(0) in
          s.w_chunks <- chunks;
          s.w_busy_ns <- Int64.to_int (Int64.sub (Clock.now_ns ()) t0);
          let wall_ns = Int64.to_int (Int64.sub (Clock.now_ns ()) p.installed_ns) in
          Some (finalize_stats ~wall_ns ~barrier_ns:0 p)
    end
    else begin
      Mutex.lock t.run_lock;
      let j = { f; total = chunks; next = Atomic.make 0; completed = 0; prof } in
      Mutex.lock t.mutex;
      if t.stop then begin
        Mutex.unlock t.mutex;
        Mutex.unlock t.run_lock;
        invalid_arg "Pool.run: pool is shut down"
      end;
      t.failure <- None;
      t.job <- Some j;
      t.generation <- t.generation + 1;
      Condition.broadcast t.work;
      Mutex.unlock t.mutex;
      execute t j ~who:0;
      let own_done_ns = match prof with None -> 0L | Some _ -> Clock.now_ns () in
      Mutex.lock t.mutex;
      while j.completed < j.total do
        Condition.wait t.finished t.mutex
      done;
      t.job <- None;
      let failure = t.failure in
      t.failure <- None;
      Mutex.unlock t.mutex;
      Mutex.unlock t.run_lock;
      match failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> (
          match prof with
          | None -> None
          | Some p ->
              let now = Clock.now_ns () in
              let wall_ns = Int64.to_int (Int64.sub now p.installed_ns) in
              let barrier_ns = Int64.to_int (Int64.sub now own_done_ns) in
              Some (finalize_stats ~wall_ns ~barrier_ns p))
    end
  end

let run t ~chunks f = ignore (run_stats t ~chunks f)

let shutdown t =
  Mutex.lock t.mutex;
  if not t.stop then begin
    t.stop <- true;
    Condition.broadcast t.work
  end;
  let ws = t.workers in
  t.workers <- [];
  Mutex.unlock t.mutex;
  List.iter Domain.join ws

(* ------------------------------------------------------------------ *)
(* the shared default pool *)

let override = Atomic.make 0 (* 0 = no override *)

let env_domains () =
  match Sys.getenv_opt "GPS_DOMAINS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | Some _ | None -> None)

let default_domains () =
  match Atomic.get override with
  | n when n >= 1 -> n
  | _ -> (
      match env_domains () with
      | Some n -> n
      | None -> Domain.recommended_domain_count ())

let set_default_domains n =
  if n < 1 then invalid_arg "Pool.set_default_domains: must be >= 1";
  Atomic.set override n

let pools : (int, t) Hashtbl.t = Hashtbl.create 4
let pools_lock = Mutex.create ()

let get domains =
  if domains < 1 then invalid_arg "Pool.get: domains must be >= 1";
  Mutex.lock pools_lock;
  let p =
    match Hashtbl.find_opt pools domains with
    | Some p -> p
    | None ->
        let p = create ~domains in
        Hashtbl.add pools domains p;
        p
  in
  Mutex.unlock pools_lock;
  p

let instance () = get (default_domains ())
