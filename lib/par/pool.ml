(* One job at a time: chunks are claimed lock-free off [next]; the
   mutex/condition pair only puts workers to sleep between jobs and
   wakes the caller on completion. Workers are long-lived — spawning a
   domain costs far more than a BFS level, so the pool amortizes it. *)

type job = {
  f : int -> unit;
  total : int;
  next : int Atomic.t;  (* next unclaimed chunk *)
  mutable completed : int;  (* guarded by the pool mutex *)
}

type t = {
  domains : int;
  mutex : Mutex.t;
  work : Condition.t;  (* a new job was installed (or shutdown) *)
  finished : Condition.t;  (* the current job's last chunk completed *)
  run_lock : Mutex.t;  (* serializes concurrent [run] callers *)
  mutable job : job option;
  mutable generation : int;  (* bumped per job, so workers never re-run one *)
  mutable failure : (exn * Printexc.raw_backtrace) option;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

(* Claim and execute chunks until the job is drained. Runs on workers
   and on the caller alike. The first exception is kept; every chunk
   still counts toward completion so the caller never deadlocks. *)
let execute t (j : job) =
  let rec go () =
    let i = Atomic.fetch_and_add j.next 1 in
    if i < j.total then begin
      (try j.f i
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Mutex.lock t.mutex;
         if t.failure = None then t.failure <- Some (e, bt);
         Mutex.unlock t.mutex);
      Mutex.lock t.mutex;
      j.completed <- j.completed + 1;
      if j.completed = j.total then Condition.broadcast t.finished;
      Mutex.unlock t.mutex;
      go ()
    end
  in
  go ()

let worker t () =
  let last_gen = ref 0 in
  Mutex.lock t.mutex;
  let rec loop () =
    if t.stop then Mutex.unlock t.mutex
    else
      match t.job with
      | Some j when t.generation <> !last_gen ->
          last_gen := t.generation;
          Mutex.unlock t.mutex;
          execute t j;
          Mutex.lock t.mutex;
          loop ()
      | _ ->
          Condition.wait t.work t.mutex;
          loop ()
  in
  loop ()

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let t =
    {
      domains;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      run_lock = Mutex.create ();
      job = None;
      generation = 0;
      failure = None;
      stop = false;
      workers = [];
    }
  in
  t.workers <- List.init (domains - 1) (fun _ -> Domain.spawn (worker t));
  t

let size t = t.domains

let run t ~chunks f =
  if chunks < 0 then invalid_arg "Pool.run: negative chunks"
  else if chunks = 0 then ()
  else if t.domains = 1 || chunks = 1 then
    (* no coordination: the caller is the whole pool *)
    for i = 0 to chunks - 1 do
      f i
    done
  else begin
    Mutex.lock t.run_lock;
    let j = { f; total = chunks; next = Atomic.make 0; completed = 0 } in
    Mutex.lock t.mutex;
    if t.stop then begin
      Mutex.unlock t.mutex;
      Mutex.unlock t.run_lock;
      invalid_arg "Pool.run: pool is shut down"
    end;
    t.failure <- None;
    t.job <- Some j;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    execute t j;
    Mutex.lock t.mutex;
    while j.completed < j.total do
      Condition.wait t.finished t.mutex
    done;
    t.job <- None;
    let failure = t.failure in
    t.failure <- None;
    Mutex.unlock t.mutex;
    Mutex.unlock t.run_lock;
    match failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let shutdown t =
  Mutex.lock t.mutex;
  if not t.stop then begin
    t.stop <- true;
    Condition.broadcast t.work
  end;
  let ws = t.workers in
  t.workers <- [];
  Mutex.unlock t.mutex;
  List.iter Domain.join ws

(* ------------------------------------------------------------------ *)
(* the shared default pool *)

let override = Atomic.make 0 (* 0 = no override *)

let env_domains () =
  match Sys.getenv_opt "GPS_DOMAINS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | Some _ | None -> None)

let default_domains () =
  match Atomic.get override with
  | n when n >= 1 -> n
  | _ -> (
      match env_domains () with
      | Some n -> n
      | None -> Domain.recommended_domain_count ())

let set_default_domains n =
  if n < 1 then invalid_arg "Pool.set_default_domains: must be >= 1";
  Atomic.set override n

let pools : (int, t) Hashtbl.t = Hashtbl.create 4
let pools_lock = Mutex.create ()

let get domains =
  if domains < 1 then invalid_arg "Pool.get: domains must be >= 1";
  Mutex.lock pools_lock;
  let p =
    match Hashtbl.find_opt pools domains with
    | Some p -> p
    | None ->
        let p = create ~domains in
        Hashtbl.add pools domains p;
        p
  in
  Mutex.unlock pools_lock;
  p

let instance () = get (default_domains ())
