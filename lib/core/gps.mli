(** GPS — interactive path query specification on graph databases.

    One-stop API over the full system. The sub-libraries remain available
    for fine-grained use:

    - {!Graph} ([gps.graph]) — the graph-database substrate;
    - {!Regex} / {!Automata} — expressions and automata;
    - {!Query} — RPQ evaluation;
    - {!Learning} — the witness-search + state-merging learner;
    - {!Interactive} — the session engine, strategies, simulated users;
    - {!Viz} — terminal/DOT renderings of the interaction views;
    - {!Server} — the multi-session query/specification service (JSON
      protocol, graph catalog, result cache, session manager, metrics,
      stdio/TCP frontends);
    - {!Obs} — cross-cutting observability: the monotonic clock, work
      counters/gauges, structured trace spans and their sinks, and
      trace summaries;
    - {!Par} — the multicore substrate: the Domain-based work pool that
      parallelizes the evaluation kernel (sized by [GPS_DOMAINS], the
      CLI's [--domains], or [Domain.recommended_domain_count]);
    - {!Workload} — PathForge-style workload generation (the AQ1–AQ28
      abstract taxonomy, seeded label/anchor instantiation, named JSONL
      mixes) and the open-loop load-storm driver that replays a mix
      against a live server at a target RPS.

    Typical use, mirroring the paper's running example:
    {[
      let g = Gps.Graph.Datasets.figure1 () in
      let goal = Gps.parse_query_exn "(tram+bus)*.cinema" in
      let trace = Gps.specify_interactively g ~goal in
      assert (Gps.Query.Rpq.equal_lang trace.Gps.learned goal)
    ]} *)

module Graph = Gps_graph
module Regex = Gps_regex
module Automata = Gps_automata
module Query = Gps_query
module Learning = Gps_learning
module Interactive = Gps_interactive
module Viz = Gps_viz
module Server = Gps_server
module Obs = Gps_obs
module Par = Gps_par
module Workload = Gps_workload

(** {1 Queries} *)

val parse_query : string -> (Query.Rpq.t, string) result
val parse_query_exn : string -> Query.Rpq.t

val evaluate : Graph.Digraph.t -> Query.Rpq.t -> string list
(** Names of the selected nodes, sorted. *)

val evaluate_str : Graph.Digraph.t -> string -> (string list, string) result
(** Parse-and-evaluate convenience. *)

val evaluate_two_way : Graph.Digraph.t -> Query.Rpq.t -> string list
(** Two-way (2RPQ) semantics: symbols with a trailing [~] traverse edges
    backwards. Sorted node names. *)

val evaluate_all_of : Graph.Digraph.t -> Query.Rpq.t list -> string list
(** Conjunction: the nodes selected by {e every} query of the list. *)

(** {1 Learning from a fixed sample (static scenario)} *)

val learn :
  Graph.Digraph.t ->
  pos:string list ->
  neg:string list ->
  (Query.Rpq.t, string) result
(** Learn a query consistent with the named examples, or explain why none
    exists. *)

(** {1 Interactive specification (the paper's core scenario)} *)

type outcome = {
  learned : Query.Rpq.t;
  questions : int;      (** user answers: labels + zooms + validations *)
  labels : int;
  zooms : int;
  validations : int;
  pruned : int;         (** nodes pruned as uninformative *)
  reached_goal : bool;  (** learned query selects exactly the goal's nodes *)
}

val specify_interactively :
  ?strategy:Interactive.Strategy.t ->
  ?config:Interactive.Session.config ->
  Graph.Digraph.t ->
  goal:Query.Rpq.t ->
  outcome
(** Simulate a full GPS session against a perfect user whose intended
    query is [goal]. Defaults: the paper's smart strategy and default
    session configuration. *)

val version : string
