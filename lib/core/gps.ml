module Graph = Gps_graph
module Regex = Gps_regex
module Automata = Gps_automata
module Query = Gps_query
module Learning = Gps_learning
module Interactive = Gps_interactive
module Viz = Gps_viz
module Server = Gps_server
module Obs = Gps_obs
module Par = Gps_par
module Workload = Gps_workload

let parse_query = Query.Rpq.of_string
let parse_query_exn = Query.Rpq.of_string_exn

let evaluate g q =
  List.sort compare (List.map (Graph.Digraph.node_name g) (Query.Eval.select_nodes g q))

let evaluate_str g s = Result.map (evaluate g) (parse_query s)

let evaluate_two_way g q =
  List.sort compare (List.map (Graph.Digraph.node_name g) (Query.Twoway.select_nodes g q))

let evaluate_all_of g queries =
  List.sort compare
    (List.map (Graph.Digraph.node_name g)
       (Query.Conjunctive.select_nodes g (Query.Conjunctive.all_of queries)))

let learn g ~pos ~neg =
  match Learning.Sample.of_names g ~pos ~neg with
  | exception Invalid_argument msg -> Error msg
  | sample -> (
      match Learning.Learner.learn g sample with
      | Learning.Learner.Learned q -> Ok q
      | Learning.Learner.Failed f ->
          Error (Format.asprintf "%a" (Learning.Learner.pp_failure g) f))

type outcome = {
  learned : Query.Rpq.t;
  questions : int;
  labels : int;
  zooms : int;
  validations : int;
  pruned : int;
  reached_goal : bool;
}

let specify_interactively ?(strategy = Interactive.Strategy.smart) ?config g ~goal =
  let user = Interactive.Oracle.perfect ~goal in
  let trace = Interactive.Simulate.run ?config g ~strategy ~user in
  let learned = trace.Interactive.Simulate.outcome.Interactive.Session.query in
  let counters = trace.Interactive.Simulate.counters in
  {
    learned;
    questions = trace.Interactive.Simulate.questions;
    labels = counters.Interactive.Session.labels;
    zooms = counters.Interactive.Session.zooms;
    validations = counters.Interactive.Session.validations;
    pruned = trace.Interactive.Simulate.pruned;
    reached_goal = Query.Eval.select g learned = Query.Eval.select g goal;
  }

let version = "1.0.0"
