(** Named, seeded, reproducible query mixes — PathForge tiers two and
    three.

    A {e mix} is a list of concrete, anchored path queries produced from
    a shape over the abstract taxonomy ({!Pattern}): each abstract
    symbol is mapped to a label drawn from the graph's edge-frequency
    ranking and each query is anchored at a node drawn from the
    out-degree ranking (both via {!Gps_graph.Rank}), with all draws
    taken from the deterministic {!Gps_graph.Prng}. The same
    [(spec, graph, seed)] triple therefore always yields byte-identical
    JSONL — mixes can be committed, diffed, and replayed.

    The [paper] mix is the exception: it is the fixed Q1–Q10 goal-query
    suite of DESIGN.md, shared with the benchmark harness so the micro
    benches and the load harness storm the same queries. *)

type entry = {
  id : string;  (** ["smoke-007.AQ22"] — mix, ordinal, pattern *)
  aq : string;  (** taxonomy id, or ["paper"] for the fixed suite *)
  graph : string;  (** catalog name the query targets *)
  query : string;  (** concrete query, repo notation *)
  anchor : string option;
      (** a high-out-degree node name — the "real query" anchor; [None]
          on fixed paper entries *)
}

type t = { mix : string; seed : int; entries : entry list }

(** {1 Mix specifications} *)

type spec = {
  name : string;
  description : string;
  shape : (string * int) list;
      (** [(pattern id, count)] rows; empty = the fixed paper suite *)
}

val specs : spec list
(** [smoke] (cheap star-free probes), [heavy-star] (recursive
    traversals), [interactive] (the full taxonomy, one of each),
    [paper] (fixed Q1–Q10). *)

val find_spec : string -> spec option

val paper_city_queries : (string * string) list
(** The DESIGN.md goal-query suite rows Q1–Q7 (city graphs), as
    [(name, query)] — the benchmark harness shares this list. *)

val paper_bio_queries : (string * string) list
(** Rows Q8–Q10 (bio graphs). *)

(** {1 Generation} *)

val generate : spec -> graph_name:string -> seed:int -> Gps_graph.Digraph.t -> t
(** Deterministic; see the module preamble.
    @raise Invalid_argument if the graph has no labels (nothing to
    instantiate against) and the spec is not the fixed paper suite. *)

(** {1 JSONL} *)

val to_jsonl : t -> string
(** One header line [{"mix":…,"seed":…,"entries":…}] then one object per
    entry, fixed field order — byte-stable for a fixed mix value. *)

val of_jsonl : string -> (t, string) result
(** Total inverse of {!to_jsonl} (also accepts header-less streams:
    every line an entry, mix name ["-"], seed 0). *)
