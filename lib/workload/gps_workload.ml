(** PathForge-style workload generation and open-loop load storms.

    Three tiers, mirroring the PathForge methodology: {!Pattern} is the
    abstract AQ1–AQ28 taxonomy (tier one), {!Mix} instantiates patterns
    against a concrete graph's label/degree rankings into reproducible
    seeded query mixes (tiers two and three, serialized as JSONL), and
    {!Storm} replays a mix open-loop against a live [gps serve] at a
    target request rate, reporting tail latencies and the server's
    shed/timeout counters. *)

module Pattern = Pattern
module Mix = Mix
module Storm = Storm
