(* Open-loop load driver: pace a mix at a target RPS over pipelined TCP
   connections, measure from the *schedule*, and harvest the server's
   resilience counters in one metrics round trip on each side of the
   storm. *)

module Json = Gps_graph.Json
module P = Gps_server.Protocol
module Clock = Gps_obs.Clock
module H = Gps_obs.Histogram

type config = {
  host : string;
  port : int;
  rps : float;
  duration_s : float;
  connections : int;
  deadline_ms : float option;
}

type outcome = {
  mix : string;
  target_rps : float;
  achieved_rps : float;
  sent : int;
  received : int;
  errors : (string * int) list;
  latency : H.snapshot;
  service : H.snapshot;
  server_delta : (string * int) list;
  series : Json.value option;
  wall_s : float;
}

(* ------------------------------------------------------------------ *)
(* plain blocking TCP plumbing *)

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> Ok addr
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } -> Error (Printf.sprintf "cannot resolve %s" host)
      | { Unix.h_addr_list; _ } -> Ok h_addr_list.(0)
      | exception Not_found -> Error (Printf.sprintf "cannot resolve %s" host))

let connect ~host ~port =
  match resolve host with
  | Error _ as e -> e
  | Ok addr -> (
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_INET (addr, port)) with
      | () -> Ok fd
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with _ -> ());
          Error (Printf.sprintf "cannot connect to %s:%d: %s" host port (Unix.error_message e)))

let close_quietly fd = try Unix.close fd with _ -> ()

(* One synchronous request/response exchange on a fresh connection. *)
let round_trip ~host ~port req =
  match connect ~host ~port with
  | Error _ as e -> e
  | Ok fd -> (
      let oc = Unix.out_channel_of_descr fd and ic = Unix.in_channel_of_descr fd in
      match
        output_string oc (P.request_to_string req);
        output_char oc '\n';
        flush oc;
        input_line ic
      with
      | exception End_of_file ->
          close_quietly fd;
          Error "connection closed mid-exchange"
      | exception Sys_error msg ->
          close_quietly fd;
          Error msg
      | exception Unix.Unix_error (e, _, _) ->
          close_quietly fd;
          Error (Unix.error_message e)
      | line -> (
          close_quietly fd;
          match Json.value_of_string line with
          | v -> Ok v
          | exception Json.Parse_error (pos, msg) ->
              Error (Printf.sprintf "bad response at byte %d: %s" pos msg)))

let decode v =
  match P.decode_response v with
  | Ok (P.Err e) -> Error (Printf.sprintf "%s: %s" e.P.code e.P.message)
  | Ok r -> Ok r
  | Error e -> Error (Printf.sprintf "%s: %s" e.P.code e.P.message)

let load_graph ~host ~port ~name ~text =
  match round_trip ~host ~port (P.Load { name; source = P.Text text }) with
  | Error _ as e -> e
  | Ok v -> (
      match decode v with
      | Ok (P.Loaded _) -> Ok ()
      | Ok _ -> Error "unexpected response to load"
      | Error _ as e -> e)

(* The resilience/dispatch counters, from the dedicated ["server"] block
   of one metrics response — a single round trip, so sheds and timeouts
   are a consistent pair. *)
let harvest_counters ~host ~port =
  match round_trip ~host ~port (P.Metrics { timings = false }) with
  | Error _ as e -> e
  | Ok v -> (
      match decode v with
      | Ok (P.Metrics_dump m) -> (
          match Json.member "server" m with
          | Some (Json.Object fields) ->
              Ok
                (List.filter_map
                   (fun (k, v) ->
                     match v with Json.Number f -> Some (k, int_of_float f) | _ -> None)
                   fields)
          | _ -> Error "metrics response has no server block")
      | Ok _ -> Error "unexpected response to metrics"
      | Error _ as e -> e)

(* The server-side time series, attributed to this storm by bracketing
   with the sampler's total sample count: one cheap probe before the
   lanes open tells us how many samples existed, and slicing the full
   window afterwards to the new points avoids comparing client and
   server clock domains. Returns [None] (not an error) when the server
   runs without a sampler — storms against lean servers still work. *)
let series_total ~host ~port =
  match round_trip ~host ~port (P.Timeseries { last = Some 1; downsample = None }) with
  | Error _ -> None
  | Ok v -> (
      match decode v with
      | Ok (P.Timeseries_dump s) -> (
          match Json.member "total_samples" s with
          | Some (Json.Number n) -> Some (int_of_float n)
          | _ -> None)
      | _ -> None)

let harvest_series ~host ~port ~before_total =
  match before_total with
  | None -> None
  | Some n0 -> (
      match round_trip ~host ~port (P.Timeseries { last = None; downsample = None }) with
      | Error _ -> None
      | Ok v -> (
          match decode v with
          | Ok (P.Timeseries_dump s) -> (
              match (Json.member "total_samples" s, Json.member "points" s) with
              | Some (Json.Number n1), Some (Json.Array pts) ->
                  (* keep the points derived from samples taken during
                     (or just after) the storm *)
                  let keep = max 0 (int_of_float n1 - n0) in
                  let len = List.length pts in
                  let pts = List.filteri (fun i _ -> i >= len - keep) pts in
                  let rebuilt =
                    match s with
                    | Json.Object fields ->
                        Json.Object
                          (List.map
                             (fun (k, v) ->
                               if k = "points" then (k, Json.Array pts) else (k, v))
                             fields)
                    | other -> other
                  in
                  Some rebuilt
              | _ -> None)
          | _ -> None))

(* ------------------------------------------------------------------ *)
(* the storm proper *)

type lane = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable lane_sent : int;
  mutable lane_received : int;
  mutable last_recv_ns : int64;
  lane_errors : (string, int) Hashtbl.t;
}

let tally tbl code = Hashtbl.replace tbl code (1 + Option.value ~default:0 (Hashtbl.find_opt tbl code))

let run config mix =
  let entries = Array.of_list mix.Mix.entries in
  if Array.length entries = 0 then Error "mix has no entries"
  else if config.rps <= 0.0 then Error "rps must be positive"
  else begin
    (* precompute each entry's request fields; per send we only prepend
       the id and stringify *)
    let fields =
      Array.map
        (fun e ->
          match
            P.encode_request
              (P.Query
                 {
                   graph = e.Mix.graph;
                   query = e.Mix.query;
                   explain = false;
                   deadline_ms = config.deadline_ms;
                 })
          with
          | Json.Object fs -> fs
          | _ -> assert false)
        entries
    in
    let total = max 1 (int_of_float ((config.rps *. config.duration_s) +. 0.5)) in
    let lanes_n = max 1 (min config.connections total) in
    let ns_per_req = 1e9 /. config.rps in
    (* 50ms of lead-in so every lane's threads are parked on the
       schedule before the first send time arrives *)
    let t0 = Int64.add (Clock.now_ns ()) 50_000_000L in
    let sched k = Int64.add t0 (Int64.of_float (float_of_int k *. ns_per_req)) in
    let send_ns = Array.make total 0L in
    let lat_h = H.create "storm.latency_ns" and svc_h = H.create "storm.service_ns" in
    let before = harvest_counters ~host:config.host ~port:config.port in
    let samples_before = series_total ~host:config.host ~port:config.port in
    let lanes =
      Array.init lanes_n (fun _ -> connect ~host:config.host ~port:config.port)
    in
    let failed =
      Array.fold_left (fun acc c -> match c with Error m -> Some m | Ok _ -> acc) None lanes
    in
    match (before, failed) with
    | Error m, _ | _, Some m ->
        Array.iter (function Ok fd -> close_quietly fd | Error _ -> ()) lanes;
        Error m
    | Ok before, None ->
        let lanes =
          Array.map
            (function
              | Ok fd ->
                  {
                    fd;
                    ic = Unix.in_channel_of_descr fd;
                    oc = Unix.out_channel_of_descr fd;
                    lane_sent = 0;
                    lane_received = 0;
                    last_recv_ns = t0;
                    lane_errors = Hashtbl.create 8;
                  }
              | Error _ -> assert false)
            lanes
        in
        (* writer: pace this lane's share of the global schedule, then
           half-close so the server ends the connection after draining *)
        let writer li =
          let lane = lanes.(li) in
          (try
             let k = ref li in
             while !k < total do
               let wait =
                 Int64.to_float (Int64.sub (sched !k) (Clock.now_ns ())) /. 1e9
               in
               if wait > 0.0 then Unix.sleepf wait;
               let fs = fields.(!k mod Array.length entries) in
               let line =
                 Json.value_to_string
                   (Json.Object (("id", Json.Number (float_of_int !k)) :: fs))
               in
               send_ns.(!k) <- Clock.now_ns ();
               output_string lane.oc line;
               output_char lane.oc '\n';
               flush lane.oc;
               lane.lane_sent <- lane.lane_sent + 1;
               k := !k + lanes_n
             done
           with Sys_error _ | Unix.Unix_error _ -> tally lane.lane_errors "transport-write");
          try Unix.shutdown lane.fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ()
        in
        (* reader: drain responses until EOF, matching ids back to the
           schedule *)
        let reader li =
          let lane = lanes.(li) in
          try
            while true do
              let line = input_line lane.ic in
              let now = Clock.now_ns () in
              match Json.value_of_string line with
              | exception Json.Parse_error _ -> tally lane.lane_errors "transport-parse"
              | v ->
                  let k =
                    match Json.member "id" v with
                    | Some (Json.Number f) -> int_of_float f
                    | _ -> -1
                  in
                  if k >= 0 && k < total then begin
                    lane.lane_received <- lane.lane_received + 1;
                    lane.last_recv_ns <- now;
                    H.record lat_h (Int64.to_int (Int64.sub now (sched k)));
                    H.record svc_h (Int64.to_int (Int64.sub now send_ns.(k)));
                    match Json.member "ok" v with
                    | Some (Json.Bool true) -> ()
                    | _ ->
                        let code =
                          match
                            Option.bind (Json.member "error" v) (Json.member "code")
                          with
                          | Some (Json.String c) -> c
                          | _ -> "unknown"
                        in
                        tally lane.lane_errors code
                  end
            done
          with
          | End_of_file -> ()
          | Sys_error _ | Unix.Unix_error _ -> tally lane.lane_errors "transport-read"
        in
        let threads =
          Array.to_list
            (Array.concat
               [
                 Array.init lanes_n (fun li -> Thread.create writer li);
                 Array.init lanes_n (fun li -> Thread.create reader li);
               ])
        in
        List.iter Thread.join threads;
        Array.iter (fun lane -> close_quietly lane.fd) lanes;
        let after = harvest_counters ~host:config.host ~port:config.port in
        let series =
          harvest_series ~host:config.host ~port:config.port
            ~before_total:samples_before
        in
        let sent = Array.fold_left (fun acc l -> acc + l.lane_sent) 0 lanes in
        let received = Array.fold_left (fun acc l -> acc + l.lane_received) 0 lanes in
        let last_recv =
          Array.fold_left
            (fun acc l -> if Int64.compare l.last_recv_ns acc > 0 then l.last_recv_ns else acc)
            t0 lanes
        in
        let wall_s =
          let w = Int64.to_float (Int64.sub last_recv t0) /. 1e9 in
          if w > 0.0 then w else config.duration_s
        in
        let errors =
          let tbl = Hashtbl.create 8 in
          Array.iter
            (fun l -> Hashtbl.iter (fun code n -> Hashtbl.replace tbl code (n + Option.value ~default:0 (Hashtbl.find_opt tbl code))) l.lane_errors)
            lanes;
          List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
        in
        let server_delta =
          match after with
          | Error _ -> []
          | Ok after ->
              List.map
                (fun (k, v) ->
                  (k, v - Option.value ~default:0 (List.assoc_opt k before)))
                after
        in
        Ok
          {
            mix = mix.Mix.mix;
            target_rps = config.rps;
            achieved_rps = float_of_int received /. wall_s;
            sent;
            received;
            errors;
            latency = H.snapshot lat_h;
            service = H.snapshot svc_h;
            server_delta;
            series;
            wall_s;
          }
  end

(* ------------------------------------------------------------------ *)
(* reporting *)

let round3 f = Float.round (f *. 1000.) /. 1000.
let ms ns = round3 (ns /. 1e6)

let histogram_json (s : H.snapshot) =
  Json.Object
    [
      ("count", Json.Number (float_of_int s.H.count));
      ("p50_ms", Json.Number (ms (H.quantile s 0.5)));
      ("p90_ms", Json.Number (ms (H.quantile s 0.9)));
      ("p95_ms", Json.Number (ms (H.quantile s 0.95)));
      ("p99_ms", Json.Number (ms (H.quantile s 0.99)));
      ("max_ms", Json.Number (ms (float_of_int s.H.max)));
      ("mean_ms", Json.Number (ms (H.mean s)));
    ]

let outcome_to_json o =
  Json.Object
    ([
      ("mix", Json.String o.mix);
      ("target_rps", Json.Number o.target_rps);
      ("achieved_rps", Json.Number (round3 o.achieved_rps));
      ("sent", Json.Number (float_of_int o.sent));
      ("received", Json.Number (float_of_int o.received));
      ("wall_s", Json.Number (round3 o.wall_s));
      ( "errors",
        Json.Object (List.map (fun (k, v) -> (k, Json.Number (float_of_int v))) o.errors) );
      ("latency", histogram_json o.latency);
      ("service", histogram_json o.service);
      ( "server",
        Json.Object
          (List.map (fun (k, v) -> (k, Json.Number (float_of_int v))) o.server_delta) );
    ]
    @ match o.series with None -> [] | Some s -> [ ("series", s) ])

let pp_outcome ppf o =
  let q s p = ms (H.quantile s p) in
  Format.fprintf ppf "mix %-12s target %8.1f rps  achieved %8.1f rps  (%d/%d ok, %.2fs)@\n"
    o.mix o.target_rps o.achieved_rps o.received o.sent o.wall_s;
  Format.fprintf ppf "  latency  p50 %8.3fms  p95 %8.3fms  p99 %8.3fms  max %8.3fms@\n"
    (q o.latency 0.5) (q o.latency 0.95) (q o.latency 0.99)
    (ms (float_of_int o.latency.H.max));
  Format.fprintf ppf "  service  p50 %8.3fms  p95 %8.3fms  p99 %8.3fms  max %8.3fms@\n"
    (q o.service 0.5) (q o.service 0.95) (q o.service 0.99)
    (ms (float_of_int o.service.H.max));
  (match o.errors with
  | [] -> ()
  | errs ->
      Format.fprintf ppf "  errors   %s@\n"
        (String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%s:%d" k v) errs)));
  let pick name = List.assoc_opt name o.server_delta in
  match (pick "sheds", pick "timeouts") with
  | Some s, Some t -> Format.fprintf ppf "  server   sheds +%d  timeouts +%d@\n" s t
  | _ -> ()
