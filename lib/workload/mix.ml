module Json = Gps_graph.Json
module Prng = Gps_graph.Prng
module Rank = Gps_graph.Rank
module R = Gps_regex.Regex

type entry = {
  id : string;
  aq : string;
  graph : string;
  query : string;
  anchor : string option;
}

type t = { mix : string; seed : int; entries : entry list }

type spec = { name : string; description : string; shape : (string * int) list }

(* The fixed goal-query suite of DESIGN.md §5 — the benchmark harness
   re-exports these, so micro benches and the load harness share one
   query source. *)
let paper_city_queries =
  [
    ("Q1", "cinema");
    ("Q2", "bus.cinema");
    ("Q3", "(tram+bus)*.cinema");
    ("Q4", "tram*.restaurant");
    ("Q5", "bus.bus*");
    ("Q6", "(bus+tram).(bus+tram).cinema");
    ("Q7", "metro*.museum");
  ]

let paper_bio_queries =
  [
    ("Q8", "interacts*.treats");
    ("Q9", "activates.(inhibits+activates)*");
    ("Q10", "encodes.interacts*.associated");
  ]

let specs =
  [
    {
      name = "smoke";
      description = "cheap star-free probes: short concatenations, unions, options";
      shape =
        [
          ("AQ1", 3); ("AQ2", 2); ("AQ4", 2); ("AQ7", 3); ("AQ8", 2); ("AQ12", 2);
          ("AQ15", 2);
        ];
    };
    {
      name = "heavy-star";
      description = "recursive traversals: starred unions, a+/a* prefixes and suffixes";
      shape =
        [
          ("AQ18", 4); ("AQ20", 6); ("AQ22", 4); ("AQ23", 4); ("AQ24", 2); ("AQ25", 2);
          ("AQ26", 2); ("AQ27", 4); ("AQ28", 4);
        ];
    };
    {
      name = "interactive";
      description = "the full PathForge taxonomy, one query per abstract pattern";
      shape = List.map (fun (p : Pattern.t) -> (p.Pattern.id, 1)) Pattern.all;
    };
    {
      name = "paper";
      description = "the fixed Q1-Q10 goal-query suite of DESIGN.md (no instantiation)";
      shape = [];
    };
  ]

let find_spec name = List.find_opt (fun s -> s.name = name) specs

(* ------------------------------------------------------------------ *)
(* generation *)

(* Draw a label from the top of the frequency ranking, preferring one
   not already used by this query; bounded retries keep the draw
   deterministic and total even on single-label graphs. *)
let draw_label prng pool ~avoid =
  let n = Array.length pool in
  let rec go attempts =
    let l = pool.(Prng.int prng n) in
    if attempts >= 8 || not (List.mem l avoid) then l else go (attempts + 1)
  in
  go 0

let generate spec ~graph_name ~seed g =
  if spec.shape = [] then
    (* the fixed paper suite: no instantiation, no anchors *)
    {
      mix = spec.name;
      seed;
      entries =
        List.map
          (fun (name, query) ->
            { id = Printf.sprintf "%s-%s" spec.name name; aq = "paper"; graph = graph_name; query; anchor = None })
          (paper_city_queries @ paper_bio_queries);
    }
  else begin
    let label_pool = Array.of_list (Rank.top_labels 6 g) in
    if Array.length label_pool = 0 then
      invalid_arg (Printf.sprintf "mix %s: graph %s has no labels" spec.name graph_name);
    let anchor_pool = Array.of_list (Rank.top_nodes 32 g) in
    let prng = Prng.create ~seed in
    let next = ref 0 in
    let entries =
      List.concat_map
        (fun (aq_id, count) ->
          let p =
            match Pattern.find aq_id with
            | Some p -> p
            | None -> invalid_arg (Printf.sprintf "mix %s: unknown pattern %s" spec.name aq_id)
          in
          List.init count (fun _ ->
              let a = draw_label prng label_pool ~avoid:[] in
              let b = draw_label prng label_pool ~avoid:[ a ] in
              let c = draw_label prng label_pool ~avoid:[ a; b ] in
              let query = R.to_string (Pattern.instantiate p ~a ~b ~c) in
              let anchor =
                if Array.length anchor_pool = 0 then None
                else Some anchor_pool.(Prng.int prng (Array.length anchor_pool))
              in
              incr next;
              {
                id = Printf.sprintf "%s-%03d.%s" spec.name !next p.Pattern.id;
                aq = p.Pattern.id;
                graph = graph_name;
                query;
                anchor;
              }))
        spec.shape
    in
    { mix = spec.name; seed; entries }
  end

(* ------------------------------------------------------------------ *)
(* JSONL *)

let entry_to_json e =
  Json.Object
    ([
       ("id", Json.String e.id);
       ("aq", Json.String e.aq);
       ("graph", Json.String e.graph);
       ("query", Json.String e.query);
     ]
    @ match e.anchor with Some n -> [ ("anchor", Json.String n) ] | None -> [])

let to_jsonl t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Json.value_to_string
       (Json.Object
          [
            ("mix", Json.String t.mix);
            ("seed", Json.Number (float_of_int t.seed));
            ("entries", Json.Number (float_of_int (List.length t.entries)));
          ]));
  Buffer.add_char buf '\n';
  List.iter
    (fun e ->
      Buffer.add_string buf (Json.value_to_string (entry_to_json e));
      Buffer.add_char buf '\n')
    t.entries;
  Buffer.contents buf

let str = function Json.String s -> Some s | _ -> None

let entry_of_json v =
  let field name = Option.bind (Json.member name v) str in
  match (field "id", field "aq", field "graph", field "query") with
  | Some id, Some aq, Some graph, Some query ->
      Ok { id; aq; graph; query; anchor = field "anchor" }
  | _ -> Error "entry line needs string fields id, aq, graph, query"

let of_jsonl text =
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.trim l <> "")
  in
  let parse_line i l =
    match Json.value_of_string l with
    | v -> Ok v
    | exception Json.Parse_error (pos, msg) ->
        Error (Printf.sprintf "line %d, byte %d: %s" (i + 1) pos msg)
  in
  let rec values i acc = function
    | [] -> Ok (List.rev acc)
    | l :: rest -> (
        match parse_line i l with
        | Ok v -> values (i + 1) (v :: acc) rest
        | Error _ as e -> e)
  in
  match values 0 [] lines with
  | Error _ as e -> e
  | Ok [] -> Error "empty mix"
  | Ok (first :: rest) -> (
      let header =
        match (Json.member "mix" first, Json.member "seed" first) with
        | Some (Json.String m), Some (Json.Number s) -> Some (m, int_of_float s)
        | _ -> None
      in
      let mix, seed, entry_values =
        match header with
        | Some (m, s) -> (m, s, rest)
        | None -> ("-", 0, first :: rest)
      in
      let rec entries acc = function
        | [] -> Ok (List.rev acc)
        | v :: vs -> (
            match entry_of_json v with
            | Ok e -> entries (e :: acc) vs
            | Error _ as e -> e)
      in
      match entries [] entry_values with
      | Ok es -> Ok { mix; seed; entries = es }
      | Error _ as e -> e)
