module R = Gps_regex.Regex

type t = { id : string; source : string; body : R.t }

let a = R.sym "a"
let b = R.sym "b"
let c = R.sym "c"

(* The 28 abstract patterns of the PathForge taxonomy, in its order and
   notation ([source] column). Bodies are built with the repo's smart
   constructors, so some entries normalize (AQ16 = AQ15 structurally);
   the ids are kept distinct anyway — shapes reference the taxonomy. *)
let all =
  List.map
    (fun (n, source, body) -> { id = Printf.sprintf "AQ%d" n; source; body })
    [
      (1, "a.b", R.seq [ a; b ]);
      (2, "a.b.c", R.seq [ a; b; c ]);
      (3, "(a.b)?", R.opt (R.seq [ a; b ]));
      (4, "a.(b|c)", R.seq [ a; R.alt [ b; c ] ]);
      (5, "c.(a?)", R.seq [ c; R.opt a ]);
      (6, "(c?).a", R.seq [ R.opt c; a ]);
      (7, "a|b", R.alt [ a; b ]);
      (8, "(a.b)|c", R.alt [ R.seq [ a; b ]; c ]);
      (9, "(a|b)|c", R.alt [ R.alt [ a; b ]; c ]);
      (10, "a+|b", R.alt [ R.plus a; b ]);
      (11, "a*|b", R.alt [ R.star a; b ]);
      (12, "a|c", R.alt [ a; c ]);
      (13, "(a?)|b", R.alt [ R.opt a; b ]);
      (14, "c|(a?)", R.alt [ c; R.opt a ]);
      (15, "a?", R.opt a);
      (16, "a??", R.opt (R.opt a));
      (17, "c|(a|b)", R.alt [ c; R.alt [ a; b ] ]);
      (18, "(a|b)+", R.plus (R.alt [ a; b ]));
      (19, "(a|b)?", R.opt (R.alt [ a; b ]));
      (20, "(a|b)*", R.star (R.alt [ a; b ]));
      (21, "c|(a.b)", R.alt [ c; R.seq [ a; b ] ]);
      (22, "a+.b", R.seq [ R.plus a; b ]);
      (23, "a*.b", R.seq [ R.star a; b ]);
      (24, "a.b+", R.seq [ a; R.plus b ]);
      (25, "a.b*", R.seq [ a; R.star b ]);
      (26, "a|(a+)", R.alt [ a; R.plus a ]);
      (27, "a+", R.plus a);
      (28, "a*", R.star a);
    ]

let find id =
  let id = String.uppercase_ascii id in
  List.find_opt (fun p -> p.id = id) all

let arity p = List.length (R.alphabet p.body)

let stars p =
  let rec count = function
    | R.Empty | R.Epsilon | R.Sym _ -> 0
    | R.Alt rs | R.Seq rs -> List.fold_left (fun acc r -> acc + count r) 0 rs
    | R.Star r -> 1 + count r
  in
  count p.body

let instantiate p ~a ~b ~c =
  let subst s = match s with "a" -> a | "b" -> b | "c" -> c | other -> other in
  let rec go = function
    | R.Empty -> R.empty
    | R.Epsilon -> R.epsilon
    | R.Sym s -> R.sym (subst s)
    | R.Alt rs -> R.alt (List.map go rs)
    | R.Seq rs -> R.seq (List.map go rs)
    | R.Star r -> R.star (go r)
  in
  go p.body

let to_string p = R.to_string p.body
