(** The PathForge abstract-query taxonomy (AQ1–AQ28).

    PathForge (dbgutalca/pathforge) eliminates hand-picked query bias by
    fixing a complete set of 28 abstract regular-path patterns over at
    most three abstract symbols [a]/[b]/[c], then instantiating symbols
    against a concrete schema and anchoring the result at concrete
    nodes. This module is the first tier: each pattern is a value whose
    body is a real {!Gps_regex.Regex.t} over the symbols ["a"], ["b"],
    ["c"], so instantiation is substitution and everything downstream
    (compilation to NFAs, evaluation, the wire protocol) reuses the
    engine unchanged.

    Notation note: PathForge writes alternation [|], one-or-more [+] and
    option [?]; this repo's query language writes alternation [+],
    one-or-more as [r.r*] and option as [ε+r]. Patterns are stored as
    ASTs, so the difference is purely presentational — {!to_string}
    renders the repo's notation, which {!Gps_regex.Parse} accepts.
    Smart-constructor normalization also means a handful of PathForge
    patterns are represented by equal ASTs (e.g. AQ16 [a??] normalizes
    to AQ15's [a?]); the taxonomy keeps all 28 ids so mix shapes and
    reports stay aligned with the PathForge numbering. *)

type t = private {
  id : string;  (** ["AQ1"] .. ["AQ28"] *)
  source : string;  (** the PathForge-notation pattern, e.g. ["a+.b"] *)
  body : Gps_regex.Regex.t;  (** over abstract symbols ["a"]/["b"]/["c"] *)
}

val all : t list
(** The 28 patterns in taxonomy order. *)

val find : string -> t option
(** Lookup by id (case-insensitive). *)

val arity : t -> int
(** Number of distinct abstract symbols the body mentions (1–3). *)

val stars : t -> int
(** Number of [Star] nodes in the body — a cheap proxy for evaluation
    cost (recursive patterns traverse, star-free ones only probe). *)

val instantiate : t -> a:string -> b:string -> c:string -> Gps_regex.Regex.t
(** Substitute concrete labels for the abstract symbols. Unused
    arguments are ignored; mapping two symbols to one label is legal
    (the smart constructors may then collapse branches). *)

val to_string : t -> string
(** The body in this repo's query notation (parses back to [body]). *)
