(** Open-loop load storms against a live [gps serve] TCP endpoint.

    The driver replays a {!Mix.t} at a {e target} request rate: request
    [k] is assigned the wire time [t0 + k/rps] and is sent at that time
    whether or not earlier responses have arrived (open loop — the
    client never lets a slow server throttle its arrival process, which
    is what makes tail latencies honest under overload). Each of the
    [connections] TCP connections carries a writer thread that paces its
    share of the schedule and a reader thread that drains responses and
    matches them to requests by the echoed ["id"] field, so requests
    pipeline freely inside every connection.

    Two latency distributions are recorded into private
    {!Gps_obs.Histogram}s:
    - {e latency}: scheduled-send → response. Queueing delay from
      falling behind schedule counts against the server — the
      coordinated-omission-resistant number an open-loop harness exists
      to measure;
    - {e service}: actual-send → response, the in-flight time only.

    Around the storm the driver harvests the server's resilience
    counters ([server.sheds], [server.timeouts], …) from the ["server"]
    block of one [metrics] round trip each — one request, one response,
    so the harvest can never race the server between two metric calls —
    and reports the per-storm delta. *)

type config = {
  host : string;
  port : int;
  rps : float;  (** target aggregate request rate *)
  duration_s : float;
  connections : int;  (** client connections (one writer + one reader thread each) *)
  deadline_ms : float option;  (** per-request wire deadline sent with every query *)
}

type outcome = {
  mix : string;
  target_rps : float;
  achieved_rps : float;
      (** received / (first scheduled send → last response) *)
  sent : int;
  received : int;
  errors : (string * int) list;  (** error code → count, sorted by code *)
  latency : Gps_obs.Histogram.snapshot;  (** scheduled-send → response, ns *)
  service : Gps_obs.Histogram.snapshot;  (** actual-send → response, ns *)
  server_delta : (string * int) list;
      (** resilience/dispatch counter deltas over the storm, sorted *)
  series : Gps_graph.Json.value option;
      (** the server-side {!Gps_obs.Timeseries} window covering this
          storm (points taken between the pre- and post-storm harvest,
          attributed by bracketing the sampler's sample count — no
          cross-host clock comparison). [None] when the server runs
          without a sampler. *)
  wall_s : float;
}

val run : config -> Mix.t -> (outcome, string) result
(** Replays the mix's entries round-robin until [rps * duration_s]
    requests are scheduled. [Error] only on transport-level failure
    (cannot connect, metrics harvest failed); per-request typed errors
    land in [errors]. *)

val load_graph :
  host:string -> port:int -> name:string -> text:string -> (unit, string) result
(** Push an edge-list graph onto the server's catalog over the wire
    (inline [Text] source) — how the harness provisions a server it did
    not start. *)

val outcome_to_json : outcome -> Gps_graph.Json.value
(** Quantiles in milliseconds (p50/p90/p95/p99/max/mean) for both
    distributions, plus achieved-vs-target rates, error counts, server
    counter deltas and (when the server samples) the embedded
    per-interval ["series"] — the shape committed in BENCH_load.json. *)

val pp_outcome : Format.formatter -> outcome -> unit
(** Human-readable one-storm report. *)
