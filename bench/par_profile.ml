(* par_profile: where the parallel speedup goes, per graph size.

   For each city graph the harness runs [Gps.Query.Profile.run] — the
   attribution engine behind [gps profile] — and records the exact
   capacity decomposition (compute / gc / imbalance / barrier+wake /
   seq idle), the per-domain busy/chunk split and the GC pause delta.
   The committed BENCH_par.json records the host's domain count so the
   numbers read honestly on a single-core box (speedup <= 1.0 there;
   the decomposition tells you why).

   The fallback threshold is lowered to 64 so the parallel kernel
   actually engages at these frontier sizes.

   GPS_PAR_SCALE=tiny shrinks the ladder for CI smoke runs.
   GPS_PAR_ASSERT=1 turns on the telemetry-integrity gates — all
   correctness, never latency:
     - the five attribution fractions sum to 1 (the identity held);
     - per-domain telemetry is present for every domain and the
       recorded chunks are nonzero (the pool's accounting ran);
     - the compute bucket reconstructs the unprofiled sequential wall
       within 15% of the profiled capacity (the busy counters measure
       real work, not noise). *)

module Json = Gps.Graph.Json
module Profile = Gps.Query.Profile
module Eval = Gps.Query.Eval
module Csr = Gps.Graph.Csr
module Digraph = Gps.Graph.Digraph

let num x = Json.Number x
let int_j n = num (float_of_int n)

let getenv_flag name = match Sys.getenv_opt name with Some "1" -> true | _ -> false

let run () =
  let tiny =
    match Sys.getenv_opt "GPS_PAR_SCALE" with Some "tiny" -> true | _ -> false
  in
  let asserting = getenv_flag "GPS_PAR_ASSERT" in
  let domains =
    let d =
      match Sys.getenv_opt "GPS_DOMAINS" with
      | Some s -> ( match int_of_string_opt s with Some d -> d | None -> 2)
      | None -> Gps.Par.Pool.default_domains ()
    in
    max 2 d
  in
  (* tiny keeps one mid-size graph: city-50's ~30us walls are too
     noisy for the 15% reconstruction gate to be meaningful *)
  let sizes = if tiny then [ 200 ] else [ 50; 200; 800 ] in
  let runs = if tiny then 3 else 5 in
  let goal = Workloads.q "(tram+bus)*.cinema" in
  let failures = ref 0 in
  let check name ok detail =
    if asserting && not ok then begin
      incr failures;
      Printf.eprintf "par_profile: ASSERT FAILED: %s (%s)\n%!" name detail
    end
  in
  let rows =
    List.map
      (fun districts ->
        let w = Workloads.city ~districts ~seed:8 in
        let g = w.Workloads.graph in
        let source = Eval.Frozen (g, Csr.freeze g) in
        let r = Profile.run ~runs ~par_threshold:64 ~domains source goal in
        let a = r.Profile.r_attribution in
        let capacity_ns =
          float_of_int r.Profile.r_domains *. float_of_int r.Profile.r_attr_wall_ns
        in
        (* the compute bucket should be the sequential work, remeasured
           from the inside: |compute - seq wall| as a capacity fraction *)
        let recon_err =
          if capacity_ns > 0. then
            Float.abs
              ((a.Profile.a_compute *. capacity_ns) -. float_of_int r.Profile.r_seq_wall_ns)
            /. capacity_ns
          else 1.
        in
        check "attribution_sum ~ 1"
          (Float.abs (Profile.attribution_sum a -. 1.) < 1e-6)
          (Printf.sprintf "%s sum=%.9f" w.Workloads.name (Profile.attribution_sum a));
        check "per-domain telemetry present"
          (Array.length r.Profile.r_busy_frac = r.Profile.r_domains
          && Array.length r.Profile.r_chunks_by = r.Profile.r_domains
          && Array.fold_left ( + ) 0 r.Profile.r_chunks_by > 0)
          (Printf.sprintf "%s busy=%d chunks=%d sum=%d" w.Workloads.name
             (Array.length r.Profile.r_busy_frac)
             (Array.length r.Profile.r_chunks_by)
             (Array.fold_left ( + ) 0 r.Profile.r_chunks_by));
        check "parallel levels engaged"
          (r.Profile.r_par_levels > 0)
          (Printf.sprintf "%s par_levels=%d" w.Workloads.name r.Profile.r_par_levels);
        check "compute reconstructs seq wall within 15% of capacity"
          (recon_err <= 0.15)
          (Printf.sprintf "%s err=%.3f" w.Workloads.name recon_err);
        Json.Object
          [
            ("graph", Json.String w.Workloads.name);
            ("nodes", int_j (Digraph.n_nodes g));
            ("edges", int_j (Digraph.n_edges g));
            ("wall_reconstruction_err", num recon_err);
            ("profile", Profile.result_to_json r);
          ])
      sizes
  in
  let doc =
    Json.Object
      [
        ("experiment", Json.String "par_profile");
        ("query", Json.String "(tram+bus)*.cinema");
        ("par_threshold", int_j 64);
        ("domains", int_j domains);
        ("host_recommended_domains", int_j (Domain.recommended_domain_count ()));
        ("profiled_runs", int_j runs);
        ("sizes", Json.Array rows);
      ]
  in
  print_endline (Json.value_to_string ~pretty:true doc);
  if !failures > 0 then begin
    Printf.eprintf "par_profile: %d assertion(s) failed\n%!" !failures;
    exit 1
  end
