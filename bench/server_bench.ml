(* server_dispatch: latency of one request through the gps_server
   dispatch core — a cold query (cache capacity 0, every request
   re-evaluates), the same query warm (LRU hit), and the warm query
   through the full wire path (JSON parse + dispatch + print). Besides
   the bechamel table, the last output line is a single JSON object so
   the numbers can be scraped by scripts. *)

module P = Gps.Server.Protocol
module Srv = Gps.Server.Server

let make_server ~cache_capacity text =
  let config = { Srv.default_config with Srv.cache_capacity } in
  let t = Srv.create ~config () in
  (match Srv.handle t (P.Load { name = "city"; source = P.Text text }) with
  | P.Loaded _ -> ()
  | _ -> failwith "server_bench: load failed");
  t

let estimate results name =
  match Hashtbl.find_opt results name with
  | None -> nan
  | Some ols -> (
      match Bechamel.Analyze.OLS.estimates ols with
      | Some (est :: _) -> est
      | Some [] | None -> nan)

let run () =
  Workloads.rule ();
  print_endline "SERVER_DISPATCH  gps serve dispatch latency, cold vs warm cache (ns/req)";
  Workloads.rule ();
  let open Bechamel in
  let open Bechamel.Toolkit in
  let text =
    Gps.Graph.Codec.to_string (Workloads.city ~districts:50 ~seed:8).Workloads.graph
  in
  let query = "(tram+bus)*.cinema" in
  let req = P.Query { graph = "city"; query; explain = false; deadline_ms = None } in
  let line = P.request_to_string req in
  let cold = make_server ~cache_capacity:0 text in
  let warm = make_server ~cache_capacity:256 text in
  ignore (Srv.handle warm req);
  let nodes, edges =
    match Srv.handle warm (P.Stats { graph = "city" }) with
    | P.Stats_of { nodes; edges; _ } -> (nodes, edges)
    | _ -> (0, 0)
  in
  let tests =
    [
      Test.make ~name:"cold" (Staged.stage (fun () -> ignore (Srv.handle cold req)));
      Test.make ~name:"warm" (Staged.stage (fun () -> ignore (Srv.handle warm req)));
      Test.make ~name:"wire" (Staged.stage (fun () -> ignore (Srv.handle_line warm line)));
    ]
  in
  let grouped = Test.make_grouped ~name:"dispatch" ~fmt:"%s %s" tests in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let cold_ns = estimate results "dispatch cold"
  and warm_ns = estimate results "dispatch warm"
  and wire_ns = estimate results "dispatch wire" in
  Printf.printf "graph: city-50 (%d nodes, %d edges)   query: %s\n\n" nodes edges query;
  Printf.printf "%-34s %12.0f ns/req\n" "query, cold (cache capacity 0)" cold_ns;
  Printf.printf "%-34s %12.0f ns/req   (%.1fx)\n" "query, warm (cache hit)" warm_ns
    (cold_ns /. warm_ns);
  Printf.printf "%-34s %12.0f ns/req   (wire overhead %.0f ns)\n\n"
    "query, warm, via wire line" wire_ns (wire_ns -. warm_ns);
  let num x = Gps.Graph.Json.Number x in
  (* exact work counts for one cold dispatch: reset the global counters,
     run a single request, snapshot. Deterministic for a fixed graph and
     query, unlike the latencies above. *)
  Gps.Obs.Counter.reset_all ();
  ignore (Srv.handle cold req);
  let cold_counters =
    Gps.Graph.Json.Object
      (List.map
         (fun (k, v) -> (k, num (float_of_int v)))
         (Gps.Obs.Counter.snapshot_nonzero ()))
  in
  let json =
    Gps.Graph.Json.Object
      [
        ("experiment", String "server_dispatch");
        ("graph", Object [ ("nodes", num (float_of_int nodes)); ("edges", num (float_of_int edges)) ]);
        ("query", String query);
        ("cold_ns_per_req", num (Float.round cold_ns));
        ("warm_ns_per_req", num (Float.round warm_ns));
        ("wire_ns_per_req", num (Float.round wire_ns));
        ("warm_req_per_s", num (Float.round (1e9 /. warm_ns)));
        ("cache_speedup", num (Float.round (cold_ns /. warm_ns)));
        ("cold_req_counters", cold_counters);
      ]
  in
  print_endline (Gps.Graph.Json.value_to_string json)
