(* gps benchmark harness.

   dune exec bench/main.exe              runs every experiment
   dune exec bench/main.exe -- --exp ID  runs one (fig1 fig2 fig3ab fig3c
                                         interactions pruning time f1
                                         pathval static users convergence
                                         lstar generalize eval minimize csr
                                         sampled incremental bound
                                         suggestion micro server_dispatch
                                         baseline eval_scale load_storm ooc
                                         par_profile)
   dune exec bench/main.exe -- --list    lists experiment ids

   Each experiment regenerates one table/figure of DESIGN.md's experiment
   index; EXPERIMENTS.md records paper-vs-measured shapes. *)

let micro () =
  Workloads.rule ();
  print_endline "MICRO  kernel latencies (Bechamel, monotonic clock, ns/run)";
  Workloads.rule ();
  let open Bechamel in
  let open Bechamel.Toolkit in
  let g = (Workloads.city ~districts:50 ~seed:8).Workloads.graph in
  let goal = Workloads.q "(tram+bus)*.cinema" in
  let nfa = Gps.Query.Rpq.nfa goal in
  let sel = Gps.Query.Eval.select g goal in
  let nodes = Gps.Graph.Digraph.nodes g in
  let pos = List.filteri (fun i _ -> i < 3) (List.filter (fun v -> sel.(v)) nodes) in
  let neg = List.filteri (fun i _ -> i < 3) (List.filter (fun v -> not sel.(v)) nodes) in
  let sample = List.fold_left Gps.Learning.Sample.add_pos Gps.Learning.Sample.empty pos in
  let sample = List.fold_left Gps.Learning.Sample.add_neg sample neg in
  let tests =
    [
      Test.make ~name:"eval.select (city-50)"
        (Staged.stage (fun () -> ignore (Gps.Query.Eval.select g goal)));
      Test.make ~name:"witness.find"
        (Staged.stage (fun () -> ignore (Gps.Query.Witness.find g goal (List.hd pos))));
      Test.make ~name:"witness_search (3 negatives)"
        (Staged.stage (fun () ->
             ignore (Gps.Learning.Witness_search.search g (List.hd pos) ~negatives:neg)));
      Test.make ~name:"informative.score (bound 4)"
        (Staged.stage (fun () ->
             ignore (Gps.Interactive.Informative.score g ~negatives:neg ~bound:4 (List.hd pos))));
      Test.make ~name:"learner.learn (3+/3-)"
        (Staged.stage (fun () -> ignore (Gps.Learning.Learner.learn g sample)));
      Test.make ~name:"regex.compile (Glushkov)"
        (Staged.stage (fun () ->
             ignore (Gps.Automata.Compile.to_nfa (Gps.Query.Rpq.regex goal))));
      Test.make ~name:"dfa.minimize"
        (Staged.stage
           (let d = Gps.Automata.Dfa.determinize nfa in
            fun () -> ignore (Gps.Automata.Dfa.minimize d)));
      Test.make ~name:"neighborhood radius 2"
        (Staged.stage (fun () ->
             ignore (Gps.Graph.Neighborhood.compute g (List.hd pos) ~radius:2)));
    ]
  in
  let grouped = Test.make_grouped ~name:"gps" ~fmt:"%s %s" tests in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances grouped in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let est =
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) -> est
          | Some [] | None -> nan
        in
        (name, est) :: acc)
      results []
  in
  List.iter
    (fun (name, est) -> Printf.printf "%-42s %12.0f ns/run\n" name est)
    (List.sort compare rows)

let experiments =
  [
    ("fig1", Experiments.fig1);
    ("fig2", Experiments.fig2);
    ("fig3ab", Experiments.fig3ab);
    ("fig3c", Experiments.fig3c);
    ("interactions", Experiments.interactions);
    ("pruning", Experiments.pruning);
    ("time", Experiments.time_scaling);
    ("f1", Experiments.f1_curve);
    ("pathval", Experiments.path_validation);
    ("static", Experiments.static_comparison);
    ("users", Experiments.user_matrix);
    ("convergence", Experiments.convergence);
    ("lstar", Experiments.lstar_counts);
    ("generalize", Experiments.generalize_ablation);
    ("eval", Experiments.eval_ablation);
    ("minimize", Experiments.minimize_ablation);
    ("csr", Experiments.csr_ablation);
    ("sampled", Experiments.sampled_ablation);
    ("incremental", Experiments.incremental_ablation);
    ("bound", Experiments.bound_ablation);
    ("suggestion", Experiments.suggestion_ablation);
    ("micro", micro);
    ("server_dispatch", Server_bench.run);
    ("baseline", Baseline.run);
    ("eval_scale", Eval_scale.run);
    ("load_storm", Load_storm.run);
    ("ooc", Ooc.run);
    ("par_profile", Par_profile.run);
  ]

let () =
  let args = Array.to_list Sys.argv in
  match args with
  | _ :: "--list" :: _ -> List.iter (fun (name, _) -> print_endline name) experiments
  | _ :: "--exp" :: id :: _ -> (
      match List.assoc_opt id experiments with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %S; use --list\n" id;
          exit 1)
  | _ ->
      List.iter
        (fun (_, f) ->
          f ();
          print_newline ())
        experiments
