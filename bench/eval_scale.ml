(* eval_scale: sequential vs parallel evaluation kernel across graph
   sizes and domain counts.

   Two comparisons, both against the same city graphs and Q3:

   - kernel:   the pre-flat-index list-based BFS (a faithful bench-local
     copy of the old kernel) vs the shared flat-index/bitset kernel at
     domains=1 — the cache-tightness win, independent of parallelism;
   - scaling:  the shared kernel at domains 1/2/4 with the default
     fallback threshold — the multicore win. On a single-core host the
     pool can only add overhead, so speedup_vs_seq ~ 1.0 there; the
     committed BENCH_eval.json records the host's domain count so the
     numbers read honestly.

   Every configuration is checked for agreement with every other before
   a single timing is reported. Timings are best-of-3 wall clock.

   GPS_EVAL_SCALE=tiny shrinks the size ladder for CI smoke runs. *)

module Json = Gps.Graph.Json
module Clock = Gps.Obs.Clock
module Digraph = Gps.Graph.Digraph
module Csr = Gps.Graph.Csr
module Nfa = Gps.Automata.Nfa
module Eval = Gps.Query.Eval

let num x = Json.Number x
let int_j n = num (float_of_int n)

(* The evaluation loop as it stood before the flat-index rewrite:
   by-label transition lists, a boolean array per product state and a
   tuple Queue. Kept here (not in the library) purely as the bench
   baseline. *)
let legacy_select g q =
  let nfa = Gps.Query.Rpq.nfa q in
  let n = Digraph.n_nodes g and m = Nfa.n_states nfa in
  let selected = Array.make n false in
  if m = 0 then selected
  else begin
    let by_label = Array.make (max (Digraph.n_labels g) 1) [] in
    List.iter
      (fun (qs, sym, qd) ->
        match Digraph.label_of_name g sym with
        | Some lbl -> by_label.(lbl) <- (qs, qd) :: by_label.(lbl)
        | None -> ())
      (Nfa.transitions nfa);
    let can_accept = Array.make (n * m) false in
    let queue = Queue.create () in
    let push v qs =
      let idx = (v * m) + qs in
      if not can_accept.(idx) then begin
        can_accept.(idx) <- true;
        Queue.add (v, qs) queue
      end
    in
    List.iter (fun qf -> for v = 0 to n - 1 do push v qf done) (Nfa.finals nfa);
    while not (Queue.is_empty queue) do
      let v', q' = Queue.pop queue in
      List.iter
        (fun (lbl, v) ->
          List.iter (fun (qs, qd) -> if qd = q' then push v qs) by_label.(lbl))
        (Digraph.in_edges g v')
    done;
    let starts = Nfa.starts nfa in
    for v = 0 to n - 1 do
      selected.(v) <- List.exists (fun q0 -> can_accept.((v * m) + q0)) starts
    done;
    selected
  end

let best_of n f =
  let best = ref infinity in
  for _ = 1 to n do
    let t0 = Clock.now_ns () in
    f ();
    let t = Clock.ns_to_s (Clock.elapsed_ns t0) in
    if t < !best then best := t
  done;
  !best

let run () =
  let tiny =
    match Sys.getenv_opt "GPS_EVAL_SCALE" with Some "tiny" -> true | _ -> false
  in
  let sizes = if tiny then [ 20; 50 ] else [ 50; 200; 800; 3200 ] in
  let domain_counts = [ 1; 2; 4 ] in
  let repeats = if tiny then 1 else 3 in
  let goal = Workloads.q "(tram+bus)*.cinema" in
  let rows =
    List.map
      (fun districts ->
        let w = Workloads.city ~districts ~seed:8 in
        let g = w.Workloads.graph in
        let csr = Csr.freeze g in
        let reference = legacy_select g goal in
        let check tag sel =
          if sel <> reference then
            failwith (Printf.sprintf "eval_scale: %s disagrees on %s" tag w.Workloads.name)
        in
        check "seq" (Eval.select_frozen ~domains:1 g csr goal);
        List.iter
          (fun d -> check (Printf.sprintf "par-%d" d) (Eval.select_frozen ~domains:d g csr goal))
          domain_counts;
        let legacy_s = best_of repeats (fun () -> ignore (legacy_select g goal)) in
        let seq_s =
          best_of repeats (fun () -> ignore (Eval.select_frozen ~domains:1 g csr goal))
        in
        let par =
          List.map
            (fun d ->
              let wall =
                best_of repeats (fun () -> ignore (Eval.select_frozen ~domains:d g csr goal))
              in
              Json.Object
                [
                  ("domains", int_j d);
                  ("wall_s", num wall);
                  ("speedup_vs_seq", num (seq_s /. wall));
                ])
            domain_counts
        in
        Json.Object
          [
            ("graph", Json.String w.Workloads.name);
            ("nodes", int_j (Digraph.n_nodes g));
            ("edges", int_j (Digraph.n_edges g));
            ("product_states", int_j (Eval.product_states g goal));
            ("legacy_s", num legacy_s);
            ("seq_s", num seq_s);
            ("kernel_speedup", num (legacy_s /. seq_s));
            ("parallel", Json.Array par);
          ])
      sizes
  in
  let doc =
    Json.Object
      [
        ("experiment", Json.String "eval_scale");
        ("query", Json.String "(tram+bus)*.cinema");
        ("host_recommended_domains", int_j (Domain.recommended_domain_count ()));
        ("repeats_best_of", int_j repeats);
        ("sizes", Json.Array rows);
      ]
  in
  print_endline (Json.value_to_string ~pretty:true doc)
