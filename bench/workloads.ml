(* Shared workloads for the benchmark harness: the datasets and the goal
   query suite of DESIGN.md (Q1-Q10). *)

module Digraph = Gps.Graph.Digraph
module Generators = Gps.Graph.Generators

type dataset = { name : string; graph : Digraph.t }

let city ~districts ~seed =
  {
    name = Printf.sprintf "city-%d" districts;
    graph = Generators.city (Generators.default_city ~districts) ~seed;
  }

let bio ~nodes ~seed =
  { name = Printf.sprintf "bio-%d" nodes; graph = Generators.bio ~nodes ~seed }

let uniform ~nodes ~seed =
  {
    name = Printf.sprintf "uniform-%d" nodes;
    graph =
      Generators.uniform ~nodes ~edges:(nodes * 2)
        ~labels:[ "a"; "b"; "c"; "d" ] ~seed;
  }

let figure1 () = { name = "figure1"; graph = Gps.Graph.Datasets.figure1 () }

(* Q1-Q7 make sense on city graphs, Q8-Q10 on bio graphs. The lists
   live in Gps.Workload.Mix (the fixed "paper" mix), so the micro
   benches and the load-storm harness replay one query source. *)
let city_queries = Gps.Workload.Mix.paper_city_queries
let bio_queries = Gps.Workload.Mix.paper_bio_queries

let q s = Gps.parse_query_exn s

let mean = function
  | [] -> nan
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let median l =
  match List.sort compare l with
  | [] -> nan
  | sorted -> List.nth sorted (List.length sorted / 2)

let header fmt = Printf.printf fmt

let rule () = print_endline (String.make 78 '-')
