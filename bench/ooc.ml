(* ooc: the out-of-core path — packed binary CSR files vs the in-heap
   evaluation story.

   For each rung of a node-count ladder the harness streams a uniform
   random graph straight to a packed file (never materializing it),
   then measures:

   - pack:      streaming pack wall time and the resulting file size;
   - cold mmap: open_map + one evaluation — the page-fault-inclusive
     first-query latency an operator sees right after [load_file];
   - warm mmap: the same query re-run on the already-faulted mapping;
   - warm heap: materialize + [Csr.freeze] (timed separately) and the
     same query on the frozen heap CSR — the baseline the mapped path
     is allowed to approach but not beat;
   - ingest:    overlay append throughput, batches of fresh edges
     through {!Gps.Graph.Disk_csr.add_edges}, plus the warm-mapped
     query latency again with the overlay in place.

   Every mapped evaluation is checked bit-for-bit against the heap
   evaluation of the same rung before any timing is reported. Timings
   are best-of-3 wall clock (cold mmap is necessarily once-per-pack:
   it re-packs per repeat so each run really is cold).

   GPS_OOC=tiny shrinks the ladder for CI smoke runs. *)

module Json = Gps.Graph.Json
module Clock = Gps.Obs.Clock
module Digraph = Gps.Graph.Digraph
module Csr = Gps.Graph.Csr
module Disk = Gps.Graph.Disk_csr
module Generators = Gps.Graph.Generators
module Eval = Gps.Query.Eval

let num x = Json.Number x
let int_j n = num (float_of_int n)

let timed f =
  let t0 = Clock.now_ns () in
  let r = f () in
  (r, Clock.ns_to_s (Clock.elapsed_ns t0))

let best_of n f =
  let best = ref infinity in
  for _ = 1 to n do
    let _, t = timed f in
    if t < !best then best := t
  done;
  !best

let labels = [ "a"; "b"; "c"; "d" ]
let query = "(a+b)*.c"

let rung ~repeats ~nodes =
  let edges = 4 * nodes in
  let path = Filename.temp_file "gps_bench_ooc" ".csr" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let goal = Workloads.q query in
      let pack () = Generators.pack_uniform ~path ~nodes ~edges ~labels ~seed:8 in
      let _, pack_s = timed pack in
      (* cold: a fresh pack per repeat so the page cache state is the
         honest just-packed one, then open + evaluate in one breath *)
      let cold_s =
        best_of repeats (fun () ->
            pack ();
            match Disk.open_map path with
            | Ok d -> ignore (Eval.select_mapped (Disk.snapshot d) goal)
            | Error e -> failwith (Disk.open_error_to_string e))
      in
      let disk =
        match Disk.open_map path with
        | Ok d -> d
        | Error e -> failwith (Disk.open_error_to_string e)
      in
      let view = Disk.snapshot disk in
      let mapped_sel = Eval.select_mapped view goal in
      let warm_mmap_s = best_of repeats (fun () -> ignore (Eval.select_mapped view goal)) in
      (* the heap baseline: full materialization + freeze, timed, then
         the same query on the frozen CSR *)
      let (g, csr), materialize_s =
        timed (fun () ->
            let g = Disk.to_digraph view in
            (g, Csr.freeze g))
      in
      let heap_sel = Eval.select_frozen g csr goal in
      if heap_sel <> mapped_sel then failwith "ooc: mapped evaluation disagrees with heap";
      let warm_heap_s =
        best_of repeats (fun () -> ignore (Eval.select_frozen g csr goal))
      in
      (* overlay ingest: fresh-node edges in batches, so every append
         exercises interning + publication, none dedups away *)
      let batch = 1_000 and batches = 10 in
      let mk_batch b =
        List.init batch (fun i ->
            let s = Printf.sprintf "x%d_%d" b i in
            (s, List.nth labels (i mod List.length labels), Printf.sprintf "y%d_%d" b i))
      in
      let ingest_s =
        let _, t =
          timed (fun () ->
              for b = 1 to batches do
                ignore (Disk.add_edges disk (mk_batch b))
              done)
        in
        t
      in
      let overlay_view = Disk.snapshot disk in
      let overlay_query_s =
        best_of repeats (fun () -> ignore (Eval.select_mapped overlay_view goal))
      in
      Json.Object
        [
          ("nodes", int_j nodes);
          ("edges", int_j (Disk.base_edges disk));
          ("file_bytes", int_j (Disk.file_bytes disk));
          ("pack_s", num pack_s);
          ("cold_mmap_query_s", num cold_s);
          ("warm_mmap_query_s", num warm_mmap_s);
          ("materialize_s", num materialize_s);
          ("warm_heap_query_s", num warm_heap_s);
          ("mapped_vs_heap", num (warm_mmap_s /. warm_heap_s));
          ("overlay_ingest_edges_per_s", num (float_of_int (batch * batches) /. ingest_s));
          ("overlay_query_s", num overlay_query_s);
        ])

let run () =
  let tiny = match Sys.getenv_opt "GPS_OOC" with Some "tiny" -> true | _ -> false in
  let sizes = if tiny then [ 2_000; 10_000 ] else [ 10_000; 100_000; 1_000_000 ] in
  let repeats = if tiny then 1 else 3 in
  let rows = List.map (fun nodes -> rung ~repeats ~nodes) sizes in
  let doc =
    Json.Object
      [
        ("experiment", Json.String "ooc");
        ("query", Json.String query);
        ("labels", Json.Array (List.map (fun l -> Json.String l) labels));
        ("repeats_best_of", int_j repeats);
        ("sizes", Json.Array rows);
      ]
  in
  print_endline (Json.value_to_string ~pretty:true doc)
