(* baseline: one JSON document pinning the engine's work counters plus
   coarse wall-clock for a fixed, deterministic workload.

   This is the experiment behind the committed BENCH_baseline.json:
   wall_s varies by machine, but every counter is an exact work count
   (product states built, merges attempted, witness expansions, session
   steps) for the scripted workload, so a diff of the committed file
   flags algorithmic regressions rather than machine noise. *)

module Json = Gps.Graph.Json
module Clock = Gps.Obs.Clock
module Counter = Gps.Obs.Counter

let num x = Json.Number x
let int_j n = num (float_of_int n)

let counters_json () =
  Json.Object (List.map (fun (k, v) -> (k, int_j v)) (Counter.snapshot_nonzero ()))

(* Reset counters, run [f], report its wall clock and the exact counter
   deltas it produced. *)
let segment f =
  Counter.reset_all ();
  let t0 = Clock.now_ns () in
  f ();
  let wall = Clock.ns_to_s (Clock.elapsed_ns t0) in
  Json.Object [ ("wall_s", num wall); ("counters", counters_json ()) ]

let run () =
  let w = Workloads.city ~districts:50 ~seed:8 in
  let g = w.Workloads.graph in
  let goal = Workloads.q "(tram+bus)*.cinema" in
  let sel = Gps.Query.Eval.select g goal in
  let nodes = Gps.Graph.Digraph.nodes g in
  let pos = List.filteri (fun i _ -> i < 3) (List.filter (fun v -> sel.(v)) nodes) in
  let neg = List.filteri (fun i _ -> i < 3) (List.filter (fun v -> not sel.(v)) nodes) in
  let sample = List.fold_left Gps.Learning.Sample.add_pos Gps.Learning.Sample.empty pos in
  let sample = List.fold_left Gps.Learning.Sample.add_neg sample neg in
  let eval_seg = segment (fun () -> ignore (Gps.Query.Eval.select g goal)) in
  let learn_seg = segment (fun () -> ignore (Gps.Learning.Learner.learn g sample)) in
  let session_seg = segment (fun () -> ignore (Gps.specify_interactively g ~goal)) in
  let dispatch_seg =
    let module P = Gps.Server.Protocol in
    let module Srv = Gps.Server.Server in
    let text = Gps.Graph.Codec.to_string g in
    let srv = Srv.create () in
    (match Srv.handle srv (P.Load { name = "city"; source = P.Text text }) with
    | P.Loaded _ -> ()
    | _ -> failwith "baseline: load failed");
    let line = P.request_to_string (P.Query { graph = "city"; query = "(tram+bus)*.cinema"; explain = false; deadline_ms = None }) in
    segment (fun () ->
        (* the wire path counts server.dispatches; the second one hits
           the query cache *)
        ignore (Srv.handle_line srv line);
        ignore (Srv.handle_line srv line))
  in
  let histogram_seg =
    (* overhead of the shared latency histogram on the hot path: records
       per second, uncontended and with 4 domains hammering one
       histogram. ops and the resulting distribution are exact; only the
       ns/op figures are machine-dependent. *)
    let module Histogram = Gps.Obs.Histogram in
    let ops = 1_000_000 in
    let fill h = for i = 0 to ops - 1 do Histogram.record h (i land 0xFFFF) done in
    let h = Histogram.create "bench.histogram_seq" in
    let t0 = Clock.now_ns () in
    fill h;
    let seq_ns = Int64.to_float (Clock.elapsed_ns t0) /. float_of_int ops in
    let hc = Histogram.create "bench.histogram_par" in
    let t0 = Clock.now_ns () in
    let domains = Array.init 4 (fun _ -> Domain.spawn (fun () -> fill hc)) in
    Array.iter Domain.join domains;
    let par_ns =
      Int64.to_float (Clock.elapsed_ns t0) /. float_of_int (4 * ops)
    in
    let s = Histogram.snapshot hc in
    Json.Object
      [
        ("ops", int_j ops);
        ("seq_ns_per_record", num seq_ns);
        ("contended_ns_per_record", num par_ns);
        ("contended_count", int_j s.Histogram.count);
        ("contended_max", int_j s.Histogram.max);
      ]
  in
  let deadline_overhead_seg =
    (* cost of the cooperative deadline checkpoints on the evaluation
       hot path, on a graph big enough that per-call setup does not
       dominate. [none] is the production default (Deadline.none is a
       physical-equality fast path inside the kernel); [armed] pays a
       monotonic clock read per BFS level and every 512 expansions.
       reps are exact; the wall figures and ratios are
       machine-dependent (none/plain is expected within a couple of
       percent of 1). *)
    let module Eval = Gps.Query.Eval in
    let module Deadline = Gps.Obs.Deadline in
    let w = Workloads.uniform ~nodes:20_000 ~seed:9 in
    let big = w.Workloads.graph in
    let csr = Gps.Graph.Csr.freeze big in
    let q = Workloads.q "(a+b)*.c.(a+b+c)*" in
    let reps = 20 in
    (* warm up caches/allocator so run order does not bias the ratios *)
    ignore (Eval.select_frozen big csr q);
    ignore (Eval.select_frozen big csr q);
    let time f =
      let t0 = Clock.now_ns () in
      for _ = 1 to reps do
        f ()
      done;
      Clock.ns_to_s (Clock.elapsed_ns t0)
    in
    let plain_s = time (fun () -> ignore (Eval.select_frozen big csr q)) in
    let none_s =
      time (fun () ->
          match Eval.select_frozen_result big csr q with
          | Ok _ -> ()
          | Error _ -> failwith "baseline: unguarded select interrupted")
    in
    let far = Deadline.after_ms 3_600_000.0 in
    let armed_s =
      time (fun () ->
          match Eval.select_frozen_result ~deadline:far big csr q with
          | Ok _ -> ()
          | Error _ -> failwith "baseline: far-future deadline fired")
    in
    Json.Object
      [
        ("reps", int_j reps);
        ("graph_nodes", int_j (Gps.Graph.Digraph.n_nodes big));
        ("plain_wall_s", num plain_s);
        ("none_wall_s", num none_s);
        ("armed_wall_s", num armed_s);
        ("none_overhead_ratio", num (none_s /. plain_s));
        ("armed_overhead_ratio", num (armed_s /. plain_s));
      ]
  in
  let doc =
    Json.Object
      [
        ("experiment", Json.String "baseline");
        ( "graph",
          Json.Object
            [
              ("name", Json.String w.Workloads.name);
              ("nodes", int_j (Gps.Graph.Digraph.n_nodes g));
              ("edges", int_j (Gps.Graph.Digraph.n_edges g));
            ] );
        ("query", Json.String "(tram+bus)*.cinema");
        ( "segments",
          Json.Object
            [
              ("eval", eval_seg);
              ("learn", learn_seg);
              ("session", session_seg);
              ("dispatch", dispatch_seg);
              ("histogram", histogram_seg);
              ("deadline_overhead", deadline_overhead_seg);
            ] );
      ]
  in
  print_endline (Json.value_to_string ~pretty:true doc)
