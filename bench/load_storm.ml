(* The standing load trajectory: boot a real `gps serve` TCP endpoint
   in-process, storm generated mixes against it open-loop, and emit
   BENCH_load.json — p50/p95/p99, achieved-vs-target RPS, server
   shed/timeout counts and the sampler's per-interval series per mix.
   The paper's interactive loop only matters at scale if the server
   sustains realistic RPQ traffic; this is the macro-benchmark every
   scaling PR re-measures, and since the series rides along, a p99
   spike in the committed document is attributable to its server-side
   cause (cache misses, sheds, eval levels) instead of being a bare
   number.

   GPS_LOAD_SCALE=tiny   CI smoke: one small mix, ~1s of traffic
   GPS_LOAD_ASSERT=1     exit 1 on any error or an idle storm (smoke gate)
   GPS_LOAD_AUDIT=FILE   audit every request (sample 1) to FILE and
                         reconcile the audit line count against the
                         client-observed request count under ASSERT *)

module W = Gps.Workload
module Srv = Gps.Server.Server
module P = Gps.Server.Protocol
module Json = Gps.Graph.Json
module Digraph = Gps.Graph.Digraph
module Wide_event = Gps.Obs.Wide_event

type storm_spec = { mix_name : string; graph : string; rps : float; duration_s : float }

let count_audit_queries file =
  let ic = open_in file in
  let events, malformed =
    Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> Wide_event.load_jsonl ic)
  in
  let queries =
    List.length
      (List.filter
         (fun ev ->
           match Json.member "endpoint" ev with
           | Some (Json.String "query") -> true
           | _ -> false)
         events)
  in
  (List.length events, queries, malformed)

let run () =
  let tiny = Sys.getenv_opt "GPS_LOAD_SCALE" = Some "tiny" in
  let audit_file = Sys.getenv_opt "GPS_LOAD_AUDIT" in
  let graphs =
    if tiny then [ ("city", (Workloads.city ~districts:20 ~seed:8).Workloads.graph) ]
    else
      [
        ("city", (Workloads.city ~districts:200 ~seed:8).Workloads.graph);
        ("bio", (Workloads.bio ~nodes:400 ~seed:8).Workloads.graph);
      ]
  in
  let storms =
    if tiny then [ { mix_name = "smoke"; graph = "city"; rps = 150.0; duration_s = 1.0 } ]
    else
      [
        { mix_name = "smoke"; graph = "city"; rps = 1000.0; duration_s = 3.0 };
        { mix_name = "heavy-star"; graph = "city"; rps = 2000.0; duration_s = 3.0 };
        { mix_name = "interactive"; graph = "city"; rps = 1500.0; duration_s = 3.0 };
        { mix_name = "heavy-star"; graph = "bio"; rps = 2000.0; duration_s = 3.0 };
      ]
  in
  let max_inflight = 128 and deadline_ms = 250.0 in
  (* tiny storms last ~1s: sample fast enough to land a few points *)
  let sample_every_s = if tiny then 0.2 else 0.5 in
  let audit_oc = Option.map open_out audit_file in
  let audit = Option.map (fun oc -> Wide_event.sink ~sample:1 oc) audit_oc in
  let server =
    Srv.create
      ~config:
        {
          Srv.default_config with
          Srv.max_inflight;
          Srv.deadline_ms = Some deadline_ms;
          Srv.sample_every_s = Some sample_every_s;
          Srv.audit;
        }
      ()
  in
  List.iter
    (fun (name, g) ->
      match Srv.handle server (P.Load { name; source = P.Text (Gps.Graph.Codec.to_string g) }) with
      | P.Err e -> failwith (Printf.sprintf "load %s: %s" name e.P.message)
      | _ -> ())
    graphs;
  let tcp = Srv.start_tcp server ~port:0 () in
  let port = Srv.tcp_port tcp in
  let outcomes =
    List.map
      (fun s ->
        let g = List.assoc s.graph graphs in
        let spec = Option.get (W.Mix.find_spec s.mix_name) in
        let mix = W.Mix.generate spec ~graph_name:s.graph ~seed:42 g in
        let config =
          {
            W.Storm.host = "127.0.0.1";
            port;
            rps = s.rps;
            duration_s = s.duration_s;
            connections = (if tiny then 4 else 8);
            deadline_ms = None;
          }
        in
        Printf.eprintf "storming %s on %s @ %.0f rps for %.1fs...\n%!" s.mix_name s.graph
          s.rps s.duration_s;
        (* let the sampler take at least one post-traffic sample so the
           storm's closing interval is covered by the sliced window *)
        let o =
          match W.Storm.run config mix with
          | Ok o -> o
          | Error msg -> failwith (Printf.sprintf "storm %s: %s" s.mix_name msg)
        in
        Unix.sleepf (sample_every_s *. 1.5);
        (s, o))
      storms
  in
  Srv.stop_tcp tcp;
  Srv.stop_sampler server;
  Option.iter close_out audit_oc;
  let doc =
    Json.Object
      [
        ("experiment", Json.String "load_storm");
        ("scale", Json.String (if tiny then "tiny" else "default"));
        ( "server",
          Json.Object
            [
              ("max_inflight", Json.Number (float_of_int max_inflight));
              ("deadline_ms", Json.Number deadline_ms);
              ("sample_every_s", Json.Number sample_every_s);
              ("audit", Json.Bool (audit_file <> None));
            ] );
        ( "graphs",
          Json.Array
            (List.map
               (fun (name, g) ->
                 Json.Object
                   [
                     ("name", Json.String name);
                     ("nodes", Json.Number (float_of_int (Digraph.n_nodes g)));
                     ("edges", Json.Number (float_of_int (Digraph.n_edges g)));
                   ])
               graphs) );
        ( "storms",
          Json.Array
            (List.map
               (fun ((s : storm_spec), o) ->
                 match W.Storm.outcome_to_json o with
                 | Json.Object fields -> Json.Object (("graph", Json.String s.graph) :: fields)
                 | other -> other)
               outcomes) );
      ]
  in
  print_endline (Json.value_to_string ~pretty:true doc);
  if Sys.getenv_opt "GPS_LOAD_ASSERT" = Some "1" then begin
    List.iter
      (fun ((s : storm_spec), (o : W.Storm.outcome)) ->
        if o.W.Storm.errors <> [] then begin
          Printf.eprintf "FAIL: storm %s/%s reported errors\n%!" s.mix_name s.graph;
          exit 1
        end;
        if o.W.Storm.received = 0 then begin
          Printf.eprintf "FAIL: storm %s/%s received no responses\n%!" s.mix_name s.graph;
          exit 1
        end;
        match o.W.Storm.series with
        | None ->
            Printf.eprintf "FAIL: storm %s/%s harvested no server series\n%!" s.mix_name
              s.graph;
            exit 1
        | Some series -> (
            match Json.member "points" series with
            | Some (Json.Array (_ :: _)) -> ()
            | _ ->
                Printf.eprintf "FAIL: storm %s/%s series has no points\n%!" s.mix_name
                  s.graph;
                exit 1))
      outcomes;
    (* audit reconciliation: with sample 1 and zero errors, the audited
       "query" lines must count exactly the query responses the clients
       saw — the wide-event stream drops nothing. *)
    match audit_file with
    | None -> ()
    | Some file ->
        let total_received =
          List.fold_left (fun acc (_, o) -> acc + o.W.Storm.received) 0 outcomes
        in
        let lines, queries, malformed = count_audit_queries file in
        Printf.eprintf "audit: %d lines (%d query, %d malformed) vs %d received\n%!"
          lines queries malformed total_received;
        if malformed > 0 then begin
          Printf.eprintf "FAIL: audit log has %d malformed lines\n%!" malformed;
          exit 1
        end;
        if queries <> total_received then begin
          Printf.eprintf "FAIL: audit query lines (%d) != client-received (%d)\n%!"
            queries total_received;
          exit 1
        end
  end
