(* The standing load trajectory: boot a real `gps serve` TCP endpoint
   in-process, storm generated mixes against it open-loop, and emit
   BENCH_load.json — p50/p95/p99, achieved-vs-target RPS and server
   shed/timeout counts per mix. The paper's interactive loop only
   matters at scale if the server sustains realistic RPQ traffic; this
   is the macro-benchmark every scaling PR re-measures.

   GPS_LOAD_SCALE=tiny   CI smoke: one small mix, ~1s of traffic
   GPS_LOAD_ASSERT=1     exit 1 on any error or an idle storm (smoke gate) *)

module W = Gps.Workload
module Srv = Gps.Server.Server
module P = Gps.Server.Protocol
module Json = Gps.Graph.Json
module Digraph = Gps.Graph.Digraph

type storm_spec = { mix_name : string; graph : string; rps : float; duration_s : float }

let run () =
  let tiny = Sys.getenv_opt "GPS_LOAD_SCALE" = Some "tiny" in
  let graphs =
    if tiny then [ ("city", (Workloads.city ~districts:20 ~seed:8).Workloads.graph) ]
    else
      [
        ("city", (Workloads.city ~districts:200 ~seed:8).Workloads.graph);
        ("bio", (Workloads.bio ~nodes:400 ~seed:8).Workloads.graph);
      ]
  in
  let storms =
    if tiny then [ { mix_name = "smoke"; graph = "city"; rps = 150.0; duration_s = 1.0 } ]
    else
      [
        { mix_name = "smoke"; graph = "city"; rps = 1000.0; duration_s = 3.0 };
        { mix_name = "heavy-star"; graph = "city"; rps = 2000.0; duration_s = 3.0 };
        { mix_name = "interactive"; graph = "city"; rps = 1500.0; duration_s = 3.0 };
        { mix_name = "heavy-star"; graph = "bio"; rps = 2000.0; duration_s = 3.0 };
      ]
  in
  let max_inflight = 128 and deadline_ms = 250.0 in
  let server =
    Srv.create
      ~config:{ Srv.default_config with Srv.max_inflight; Srv.deadline_ms = Some deadline_ms }
      ()
  in
  List.iter
    (fun (name, g) ->
      match Srv.handle server (P.Load { name; source = P.Text (Gps.Graph.Codec.to_string g) }) with
      | P.Err e -> failwith (Printf.sprintf "load %s: %s" name e.P.message)
      | _ -> ())
    graphs;
  let tcp = Srv.start_tcp server ~port:0 () in
  let port = Srv.tcp_port tcp in
  let outcomes =
    List.map
      (fun s ->
        let g = List.assoc s.graph graphs in
        let spec = Option.get (W.Mix.find_spec s.mix_name) in
        let mix = W.Mix.generate spec ~graph_name:s.graph ~seed:42 g in
        let config =
          {
            W.Storm.host = "127.0.0.1";
            port;
            rps = s.rps;
            duration_s = s.duration_s;
            connections = (if tiny then 4 else 8);
            deadline_ms = None;
          }
        in
        Printf.eprintf "storming %s on %s @ %.0f rps for %.1fs...\n%!" s.mix_name s.graph
          s.rps s.duration_s;
        match W.Storm.run config mix with
        | Ok o -> (s, o)
        | Error msg -> failwith (Printf.sprintf "storm %s: %s" s.mix_name msg))
      storms
  in
  Srv.stop_tcp tcp;
  let doc =
    Json.Object
      [
        ("experiment", Json.String "load_storm");
        ("scale", Json.String (if tiny then "tiny" else "default"));
        ( "server",
          Json.Object
            [
              ("max_inflight", Json.Number (float_of_int max_inflight));
              ("deadline_ms", Json.Number deadline_ms);
            ] );
        ( "graphs",
          Json.Array
            (List.map
               (fun (name, g) ->
                 Json.Object
                   [
                     ("name", Json.String name);
                     ("nodes", Json.Number (float_of_int (Digraph.n_nodes g)));
                     ("edges", Json.Number (float_of_int (Digraph.n_edges g)));
                   ])
               graphs) );
        ( "storms",
          Json.Array
            (List.map
               (fun ((s : storm_spec), o) ->
                 match W.Storm.outcome_to_json o with
                 | Json.Object fields -> Json.Object (("graph", Json.String s.graph) :: fields)
                 | other -> other)
               outcomes) );
      ]
  in
  print_endline (Json.value_to_string ~pretty:true doc);
  if Sys.getenv_opt "GPS_LOAD_ASSERT" = Some "1" then
    List.iter
      (fun ((s : storm_spec), (o : W.Storm.outcome)) ->
        if o.W.Storm.errors <> [] then begin
          Printf.eprintf "FAIL: storm %s/%s reported errors\n%!" s.mix_name s.graph;
          exit 1
        end;
        if o.W.Storm.received = 0 then begin
          Printf.eprintf "FAIL: storm %s/%s received no responses\n%!" s.mix_name s.graph;
          exit 1
        end)
      outcomes
