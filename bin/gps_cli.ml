(* gps — command-line front end to the GPS system.

   Subcommands:
     generate   synthesize a graph database (city / bio / uniform / scale-free)
     stats      describe a graph
     query      evaluate a path query, with optional witness explanations
     learn      learn a query from labeled node names (static scenario)
     session    run the interactive scenario: simulated oracle or real stdin user
     dot        export a graph (or a node neighborhood) to GraphViz
     serve      the multi-session service: newline-delimited JSON over
                stdio or TCP
     top        live dashboard off a serving instance's timeseries
     audit      offline aggregation of --audit wide-event logs *)

open Cmdliner
module Digraph = Gps.Graph.Digraph
module Proto = Gps.Server.Protocol

(* ---------------------------------------------------------------- *)
(* shared argument parsers *)

let graph_arg =
  let doc = "Graph database file (edge list: 'src label dst' per line)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"GRAPH" ~doc)

let load_graph path =
  try Ok (Gps.Graph.Codec.load path) with
  | Gps.Graph.Codec.Parse_error (line, msg) ->
      Error (Printf.sprintf "%s:%d: %s" path line msg)
  | Sys_error msg -> Error msg

let or_die = function
  | Ok v -> v
  | Error msg ->
      prerr_endline ("gps: " ^ msg);
      exit 1

let query_pos n =
  let doc = "Path query in the paper's notation, e.g. '(tram+bus)*.cinema'." in
  Arg.(required & pos n (some string) None & info [] ~docv:"QUERY" ~doc)

(* --domains N: size the evaluation pool for this run. The parallel
   kernel otherwise sizes itself from GPS_DOMAINS or the runtime's
   recommended domain count; an explicit flag wins over both. *)
let domains_arg =
  let doc =
    "Number of OCaml domains the parallel evaluation kernel may use (1 disables \
     parallelism). Overrides the $(b,GPS_DOMAINS) environment variable; default: \
     the runtime's recommended domain count."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

let apply_domains = function
  | None -> ()
  | Some n ->
      if n < 1 then or_die (Error "--domains must be >= 1")
      else Gps.Par.Pool.set_default_domains n

(* --trace FILE: record a JSONL span trace of the whole run. The option
   rides on every command that exercises the engine; 'gps trace summary'
   aggregates the file afterwards. *)
let trace_arg =
  let doc =
    "Record a JSONL span trace of this run to $(docv) (aggregate it with \
     'gps trace summary $(docv)')."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let with_trace trace f =
  match trace with
  | None -> f ()
  | Some path ->
      let oc =
        try open_out path
        with Sys_error msg -> or_die (Error msg)
      in
      Gps.Obs.Trace.enable (Gps.Obs.Trace.Jsonl oc);
      let finish () =
        Gps.Obs.Trace.disable ();
        close_out oc
      in
      (match f () with
      | v ->
          finish ();
          v
      | exception e ->
          finish ();
          raise e)

(* ---------------------------------------------------------------- *)
(* wire helpers: one-request round trips against a running server,
   shared by metrics / top / workload storm *)

let parse_hostport ?(flag = "--connect") addr =
  match String.rindex_opt addr ':' with
  | Some i -> (
      let h = String.sub addr 0 i in
      let p = String.sub addr (i + 1) (String.length addr - i - 1) in
      match int_of_string_opt p with
      | Some p -> ((if h = "" then "127.0.0.1" else h), p)
      | None -> or_die (Error (Printf.sprintf "bad port in %S" addr)))
  | None -> or_die (Error (Printf.sprintf "%s wants HOST:PORT, got %S" flag addr))

(* connect with a real timeout: nonblocking connect + select, then
   SO_RCVTIMEO/SO_SNDTIMEO so a stalled server cannot hang the client *)
let connect_timed host port timeout =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let fail msg =
    (try Unix.close fd with _ -> ());
    Error msg
  in
  match
    Unix.set_nonblock fd;
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
  with
  | () | (exception Unix.Unix_error (Unix.EINPROGRESS, _, _)) -> (
      match Unix.select [] [ fd ] [] timeout with
      | _, [ _ ], _ -> (
          match Unix.getsockopt_error fd with
          | None ->
              Unix.clear_nonblock fd;
              (try
                 Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
                 Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout
               with Unix.Unix_error _ -> ());
              Ok fd
          | Some e -> fail (Unix.error_message e))
      | _ -> fail "connect timed out"
      | exception Unix.Unix_error (e, _, _) -> fail (Unix.error_message e))
  | exception Unix.Unix_error (e, _, _) -> fail (Unix.error_message e)

(* Send one typed request, read the one typed response. [retries] extra
   attempts with jittered exponential backoff absorb a restarting
   server; protocol-level errors come back as [Proto.Err] for the
   caller to interpret. Transport failure past the retries is fatal. *)
let round_trip ~host ~port ~timeout ?(retries = 0) req =
  let attempt () =
    match connect_timed host port timeout with
    | Error msg -> Error (Printf.sprintf "cannot connect to %s:%d: %s" host port msg)
    | Ok fd -> (
        let oc = Unix.out_channel_of_descr fd and ic = Unix.in_channel_of_descr fd in
        let finish r =
          (try close_out oc with _ -> ());
          r
        in
        match
          output_string oc (Proto.request_to_string req);
          output_char oc '\n';
          flush oc;
          input_line ic
        with
        | exception End_of_file -> finish (Error "connection closed")
        | exception Sys_error msg -> finish (Error msg)
        | exception Unix.Unix_error (e, _, _) -> finish (Error (Unix.error_message e))
        | line -> finish (Ok line))
  in
  let rec go attempt_no =
    match attempt () with
    | Ok line -> line
    | Error msg when attempt_no < retries ->
        let backoff = 0.2 *. Float.of_int (1 lsl attempt_no) in
        let jittered = backoff *. (0.5 +. Random.float 0.5) in
        Printf.eprintf "gps: %s; retrying in %.2fs (%d left)\n%!" msg jittered
          (retries - attempt_no);
        Unix.sleepf jittered;
        go (attempt_no + 1)
    | Error msg -> or_die (Error msg)
  in
  Random.self_init ();
  let line = go 0 in
  match Gps.Graph.Json.value_of_string line with
  | exception Gps.Graph.Json.Parse_error (pos, msg) ->
      or_die (Error (Printf.sprintf "bad response at %d: %s" pos msg))
  | v -> (
      match Proto.decode_response v with
      | Ok r -> r
      | Error e -> Proto.Err e)

(* ---------------------------------------------------------------- *)
(* generate *)

let generate_cmd =
  let kind =
    let doc = "Graph family: city, bio, uniform or scalefree." in
    Arg.(value & opt string "city" & info [ "kind"; "k" ] ~docv:"KIND" ~doc)
  in
  let nodes =
    let doc = "Approximate node count." in
    Arg.(value & opt int 100 & info [ "nodes"; "n" ] ~docv:"N" ~doc)
  in
  let seed =
    let doc = "PRNG seed (generation is deterministic)." in
    Arg.(value & opt int 42 & info [ "seed"; "s" ] ~docv:"SEED" ~doc)
  in
  let output =
    let doc = "Output file (default: stdout)." in
    Arg.(value & opt (some string) None & info [ "output"; "o" ] ~docv:"FILE" ~doc)
  in
  let run kind nodes seed output =
    let g =
      match kind with
      | "city" ->
          (* districts + facilities sum to roughly [nodes] *)
          let districts = max 2 (nodes / 2) in
          Gps.Graph.Generators.city (Gps.Graph.Generators.default_city ~districts) ~seed
      | "bio" -> Gps.Graph.Generators.bio ~nodes:(max 10 nodes) ~seed
      | "uniform" ->
          Gps.Graph.Generators.uniform ~nodes ~edges:(nodes * 3)
            ~labels:[ "a"; "b"; "c"; "d" ] ~seed
      | "scalefree" ->
          Gps.Graph.Generators.preferential ~nodes ~attach:2 ~labels:[ "a"; "b"; "c" ] ~seed
      | other -> or_die (Error (Printf.sprintf "unknown kind %S" other))
    in
    let text = Gps.Graph.Codec.to_string g in
    match output with
    | Some path ->
        let oc = open_out path in
        output_string oc text;
        close_out oc;
        Printf.printf "wrote %d nodes, %d edges to %s\n" (Digraph.n_nodes g) (Digraph.n_edges g)
          path
    | None -> print_string text
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Synthesize a graph database")
    Term.(const run $ kind $ nodes $ seed $ output)

(* ---------------------------------------------------------------- *)
(* stats *)

let stats_cmd =
  let run path =
    let g = or_die (load_graph path) in
    print_endline (Gps.Viz.Ascii.graph_summary g)
  in
  Cmd.v (Cmd.info "stats" ~doc:"Describe a graph database") Term.(const run $ graph_arg)

(* ---------------------------------------------------------------- *)
(* query *)

let query_cmd =
  let witness =
    let doc = "Also print a shortest witness walk per selected node." in
    Arg.(value & flag & info [ "witness"; "w" ] ~doc)
  in
  let explain =
    let doc =
      "Also print the evaluation's EXPLAIN report: automaton and product sizes, per-level \
       frontier sizes, parallel-vs-sequential level decisions and the stop reason."
    in
    Arg.(value & flag & info [ "explain" ] ~doc)
  in
  let deadline_ms =
    let doc =
      "Abort the evaluation after $(docv) milliseconds (cooperative: the kernel polls a \
       monotonic deadline between expansions). On timeout the partial EXPLAIN report is \
       printed and the exit status is 3."
    in
    Arg.(value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let par_threshold =
    let doc =
      "Minimum frontier size for a BFS level to be expanded on the domain pool (smaller \
       levels run sequentially). Default: 1024. Lowering it with $(b,--explain) makes the \
       per-level efficiency section observable on small graphs."
    in
    Arg.(value & opt (some int) None & info [ "par-threshold" ] ~docv:"N" ~doc)
  in
  let run path qs witness explain deadline_ms par_threshold trace domains =
    apply_domains domains;
    (* --explain narrates the scheduler too: turn on pool profiling so
       parallel levels carry per-domain busy/chunk/barrier telemetry *)
    if explain then Gps.Par.Pool.set_profiling true;
    let g = or_die (load_graph path) in
    let q = or_die (Gps.parse_query qs) in
    with_trace trace @@ fun () ->
    let sel, report =
      match deadline_ms with
      | Some ms -> (
          if ms <= 0. then or_die (Error "--deadline-ms must be positive");
          let deadline = Gps.Obs.Deadline.after_ms ms in
          match Gps.Query.Eval.select_report_result ?par_threshold ~deadline g q with
          | Ok (sel, r) -> (sel, if explain then Some r else None)
          | Error { Gps.Query.Eval.reason; partial } ->
              Printf.eprintf "gps: query %s after %g ms (visited %d product states)\n"
                (Gps.Obs.Deadline.reason_to_string reason)
                ms partial.Gps.Query.Eval.frontier_visits;
              Format.eprintf "partial explain:@.%a@?" Gps.Query.Eval.pp_report partial;
              exit 3)
      | None ->
          if explain then
            let sel, r = Gps.Query.Eval.select_report ?par_threshold g q in
            (sel, Some r)
          else (Gps.Query.Eval.select ?par_threshold g q, None)
    in
    let selected = List.filter (fun v -> sel.(v)) (List.init (Array.length sel) Fun.id) in
    Printf.printf "%s selects %d node(s)\n" (Gps.Query.Rpq.to_string q) (List.length selected);
    List.iter
      (fun v ->
        if witness then
          match Gps.Query.Witness.find g q v with
          | Some w -> Printf.printf "  %-12s %s\n" (Digraph.node_name g v)
                        (Gps.Viz.Ascii.witness g w)
          | None -> ()
        else Printf.printf "  %s\n" (Digraph.node_name g v))
      selected;
    match report with
    | None -> ()
    | Some r -> Format.printf "@.explain:@.%a" Gps.Query.Eval.pp_report r
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Evaluate a path query")
    Term.(
      const run $ graph_arg $ query_pos 1 $ witness $ explain $ deadline_ms $ par_threshold
      $ trace_arg $ domains_arg)

(* ---------------------------------------------------------------- *)
(* learn *)

let names_opt name doc =
  Arg.(value & opt (list string) [] & info [ name ] ~docv:"NODES" ~doc)

let learn_cmd =
  let pos = names_opt "pos" "Comma-separated positive node names." in
  let neg = names_opt "neg" "Comma-separated negative node names." in
  let run path pos neg trace domains =
    apply_domains domains;
    let g = or_die (load_graph path) in
    with_trace trace @@ fun () ->
    match Gps.learn g ~pos ~neg with
    | Ok q ->
        Printf.printf "learned: %s\n" (Gps.Query.Rpq.to_string q);
        Printf.printf "selects: %s\n" (String.concat ", " (Gps.evaluate g q))
    | Error msg ->
        Printf.printf "no consistent query: %s\n" msg;
        exit 2
  in
  Cmd.v
    (Cmd.info "learn" ~doc:"Learn a query from labeled nodes (static scenario)")
    Term.(const run $ graph_arg $ pos $ neg $ trace_arg $ domains_arg)

(* ---------------------------------------------------------------- *)
(* session *)

let strategy_arg =
  let doc = "Node-proposal strategy: smart, random or degree." in
  Arg.(value & opt string "smart" & info [ "strategy" ] ~docv:"NAME" ~doc)

(* A real user on stdin, driven through History so [u] undoes the last
   answer. Returns the finished session. *)
let stdin_session ~config ~strategy g =
  let module H = Gps.Interactive.History in
  let module S = Gps.Interactive.Session in
  let module V = Gps.Interactive.View in
  let read_line_opt () = try Some (read_line ()) with End_of_file -> None in
  let try_undo h =
    match H.undo h with
    | Some h' ->
        print_endline "(undone)";
        h'
    | None ->
        print_endline "(nothing to undo)";
        h
  in
  let rec loop h =
    match H.request h with
    | S.Finished _ -> H.current h
    | S.Ask_label view ->
        print_string (Gps.Viz.Ascii.neighborhood g view);
        print_string "label this node? [y]es / [n]o / [z]oom / [u]ndo: ";
        (match Option.map String.lowercase_ascii (read_line_opt ()) with
        | Some ("y" | "yes") -> loop (H.answer_label h `Pos)
        | Some ("n" | "no") -> loop (H.answer_label h `Neg)
        | Some ("z" | "zoom") -> loop (H.answer_label h `Zoom)
        | Some ("u" | "undo") -> loop (try_undo h)
        | Some _ -> loop h
        | None -> loop (H.answer_label h `Neg))
    | S.Ask_path tree ->
        print_string (Gps.Viz.Ascii.path_tree tree);
        List.iteri
          (fun i w -> Printf.printf "  [%d] %s\n" i (String.concat "." w))
          tree.V.words;
        print_string "path of interest? [number, enter = suggested, u = undo]: ";
        (match read_line_opt () with
        | None | Some "" -> loop (H.answer_path h tree.V.suggested)
        | Some "u" -> loop (try_undo h)
        | Some s -> (
            match int_of_string_opt s with
            | Some i when i >= 0 && i < List.length tree.V.words ->
                loop (H.answer_path h (List.nth tree.V.words i))
            | _ -> loop h))
    | S.Propose q ->
        Printf.printf "current query: %s -- satisfied? [y/N/u]: " (Gps.Query.Rpq.to_string q);
        (match Option.map String.lowercase_ascii (read_line_opt ()) with
        | Some ("y" | "yes") -> loop (H.accept h)
        | Some ("u" | "undo") -> loop (try_undo h)
        | _ -> loop (H.refine h))
  in
  loop (H.start ~config ~strategy g)

(* A scripted user for --goal / --replay runs (no undo). *)
let stdin_user () =
  let read_line_opt () = try Some (read_line ()) with End_of_file -> None in
  let rec ask_label g view =
    print_string (Gps.Viz.Ascii.neighborhood g view);
    print_string "label this node? [y]es / [n]o / [z]oom: ";
    match Option.map String.lowercase_ascii (read_line_opt ()) with
    | Some ("y" | "yes") -> `Pos
    | Some ("n" | "no") -> `Neg
    | Some ("z" | "zoom") -> `Zoom
    | Some _ -> ask_label g view
    | None -> `Neg
  in
  let rec ask_path _g (tree : Gps.Interactive.View.path_tree) =
    print_string (Gps.Viz.Ascii.path_tree tree);
    List.iteri
      (fun i w -> Printf.printf "  [%d] %s\n" i (String.concat "." w))
      tree.Gps.Interactive.View.words;
    Printf.printf "path of interest? [number, enter = suggested]: ";
    match read_line_opt () with
    | None | Some "" -> tree.Gps.Interactive.View.suggested
    | Some s -> (
        match int_of_string_opt s with
        | Some i when i >= 0 && i < List.length tree.Gps.Interactive.View.words ->
            List.nth tree.Gps.Interactive.View.words i
        | _ -> ask_path _g tree)
  in
  let satisfied _g q =
    Printf.printf "current query: %s -- satisfied? [y/N]: " (Gps.Query.Rpq.to_string q);
    match Option.map String.lowercase_ascii (read_line_opt ()) with
    | Some ("y" | "yes") -> true
    | _ -> false
  in
  { Gps.Interactive.Oracle.name = "stdin"; label = ask_label; validate = ask_path; satisfied }

let session_cmd =
  let goal =
    let doc =
      "Goal query for a simulated oracle user. Omit to drive the session yourself on stdin."
    in
    Arg.(value & opt (some string) None & info [ "goal" ] ~docv:"QUERY" ~doc)
  in
  let seed =
    let doc = "Seed for the random strategy." in
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let budget =
    let doc = "Maximum number of user answers." in
    Arg.(value & opt (some int) None & info [ "budget" ] ~docv:"N" ~doc)
  in
  let record =
    let doc = "Record the session's answers to this journal file (JSON)." in
    Arg.(value & opt (some string) None & info [ "record" ] ~docv:"FILE" ~doc)
  in
  let replay =
    let doc = "Replay answers from this journal file instead of asking anyone." in
    Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"FILE" ~doc)
  in
  let explain =
    let doc = "After an oracle session, explain how every node ended up classified." in
    Arg.(value & flag & info [ "explain" ] ~doc)
  in
  let run path strategy goal seed budget record replay explain trace domains =
    apply_domains domains;
    let g = or_die (load_graph path) in
    let strategy = or_die (Gps.Interactive.Strategy.by_name ~seed strategy) in
    with_trace trace @@ fun () ->
    let config =
      { Gps.Interactive.Session.default_config with
        Gps.Interactive.Session.max_questions = budget }
    in
    let summarize outcome questions pruned =
      Printf.printf "\nsession finished (%s)\n"
        (match outcome.Gps.Interactive.Session.reason with
        | Gps.Interactive.Session.Satisfied -> "user satisfied"
        | Gps.Interactive.Session.No_informative_nodes -> "no informative nodes left"
        | Gps.Interactive.Session.Budget_exhausted -> "budget exhausted"
        | Gps.Interactive.Session.Inconsistent _ -> "labels inconsistent"
        | Gps.Interactive.Session.Interrupted r ->
            "interrupted: " ^ Gps.Obs.Deadline.reason_to_string r);
      Printf.printf "learned query: %s\n"
        (Gps.Query.Rpq.to_string outcome.Gps.Interactive.Session.query);
      Printf.printf "selects: %s\n"
        (String.concat ", " (Gps.evaluate g outcome.Gps.Interactive.Session.query));
      Printf.printf "answers: %d  pruned: %d\n" questions pruned
    in
    match (replay, goal, record) with
    | None, None, None ->
        (* a real user on stdin, with undo support *)
        let final = stdin_session ~config ~strategy g in
        (match Gps.Interactive.Session.request final with
        | Gps.Interactive.Session.Finished outcome ->
            summarize outcome
              (Gps.Interactive.Session.questions final)
              (List.length (Gps.Interactive.Session.implied_neg final))
        | _ -> assert false)
    | _ ->
        let base_user =
          match (replay, goal) with
          | Some file, _ ->
              Gps.Interactive.Journal.replayer (or_die (Gps.Interactive.Journal.load file))
          | None, Some qs -> Gps.Interactive.Oracle.perfect ~goal:(or_die (Gps.parse_query qs))
          | None, None -> stdin_user ()
        in
        let user, journal_of =
          match record with
          | Some _ ->
              let u, j = Gps.Interactive.Journal.recording base_user in
              (u, Some j)
          | None -> (base_user, None)
        in
        let trace = Gps.Interactive.Simulate.run ~config g ~strategy ~user in
        (match (record, journal_of) with
        | Some file, Some j ->
            Gps.Interactive.Journal.save file (j ());
            Printf.printf "journal written to %s\n" file
        | _ -> ());
        summarize trace.Gps.Interactive.Simulate.outcome
          trace.Gps.Interactive.Simulate.questions trace.Gps.Interactive.Simulate.pruned;
        if explain then begin
          (* re-drive deterministically to recover the final state, then
             narrate every classified node *)
          match (replay, goal) with
          | None, Some qs ->
              let user = Gps.Interactive.Oracle.perfect ~goal:(or_die (Gps.parse_query qs)) in
              let final = Gps.Interactive.Simulate.final_state ~config g ~strategy ~user in
              print_endline "\nwhy each node ended up where it did:";
              Digraph.iter_nodes
                (fun v ->
                  match Gps.Interactive.Explain.explain final v with
                  | Gps.Interactive.Explain.Unconstrained -> ()
                  | reason ->
                      Printf.printf "  %-14s %s\n" (Digraph.node_name g v)
                        (Format.asprintf "%a" (Gps.Interactive.Explain.render g) reason))
                g
          | _ -> prerr_endline "gps: --explain requires --goal (and no --replay)"
        end
  in
  Cmd.v
    (Cmd.info "session" ~doc:"Run the interactive specification scenario")
    Term.(
      const run $ graph_arg $ strategy_arg $ goal $ seed $ budget $ record $ replay $ explain
      $ trace_arg $ domains_arg)

(* ---------------------------------------------------------------- *)
(* dot *)

let dot_cmd =
  let center =
    let doc = "Restrict to the neighborhood of this node." in
    Arg.(value & opt (some string) None & info [ "around" ] ~docv:"NODE" ~doc)
  in
  let radius =
    let doc = "Neighborhood radius (with --around)." in
    Arg.(value & opt int 2 & info [ "radius"; "r" ] ~docv:"R" ~doc)
  in
  let run path center radius =
    let g = or_die (load_graph path) in
    match center with
    | None -> print_string (Gps.Graph.Dot.of_graph g)
    | Some name ->
        let v =
          match Digraph.node_of_name g name with
          | Some v -> v
          | None -> or_die (Error (Printf.sprintf "unknown node %S" name))
        in
        let view = Gps.Interactive.View.make_neighborhood g v ~radius in
        print_string (Gps.Viz.Dotviz.neighborhood g view)
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Export a graph or neighborhood to GraphViz")
    Term.(const run $ graph_arg $ center $ radius)

(* ---------------------------------------------------------------- *)
(* convert *)

let convert_cmd =
  let format =
    let doc = "Output format: 'json' or 'edges'." in
    Arg.(value & opt string "json" & info [ "to" ] ~docv:"FORMAT" ~doc)
  in
  let run path format =
    (* input format is sniffed: JSON starts with '{' *)
    let ic = open_in path in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    let is_json =
      let rec first i =
        if i >= String.length text then '\000'
        else
          match text.[i] with ' ' | '\t' | '\n' | '\r' -> first (i + 1) | c -> c
      in
      first 0 = '{'
    in
    let g =
      try if is_json then Gps.Graph.Json.of_string text else Gps.Graph.Codec.of_string text with
      | Gps.Graph.Json.Parse_error (pos, msg) ->
          or_die (Error (Printf.sprintf "%s: json error at %d: %s" path pos msg))
      | Gps.Graph.Codec.Parse_error (line, msg) ->
          or_die (Error (Printf.sprintf "%s:%d: %s" path line msg))
    in
    match format with
    | "json" -> print_string (Gps.Graph.Json.to_string ~pretty:true g)
    | "edges" -> print_string (Gps.Graph.Codec.to_string g)
    | other -> or_die (Error (Printf.sprintf "unknown format %S (json or edges)" other))
  in
  Cmd.v
    (Cmd.info "convert" ~doc:"Convert a graph between edge-list and JSON formats")
    Term.(const run $ graph_arg $ format)

(* ---------------------------------------------------------------- *)
(* graph: packed binary CSR files (pack / info) *)

let graph_cmd =
  let module D = Gps.Graph.Disk_csr in
  let pack_cmd =
    let input =
      let doc =
        "Graph database file (edge list: 'src label dst' per line) to pack. Omit it and \
         pass $(b,--generate) to stream a synthetic graph straight to disk instead."
      in
      Arg.(value & pos 0 (some file) None & info [] ~docv:"GRAPH" ~doc)
    in
    let output =
      let doc = "Output packed file (conventionally $(b,.csr))." in
      Arg.(required & opt (some string) None & info [ "output"; "o" ] ~docv:"FILE" ~doc)
    in
    let generate =
      let doc =
        "Stream a uniform random graph of $(b,--nodes)/$(b,--edges) size directly into \
         the packed file — no in-heap graph is ever built, so million-node files pack \
         in O(file) memory. The only supported family is 'uniform'."
      in
      Arg.(value & opt (some string) None & info [ "generate" ] ~docv:"FAMILY" ~doc)
    in
    let nodes =
      let doc = "Node count for --generate." in
      Arg.(value & opt int 1_000_000 & info [ "nodes"; "n" ] ~docv:"N" ~doc)
    in
    let edges =
      let doc = "Edge count for --generate (default: 4x nodes)." in
      Arg.(value & opt (some int) None & info [ "edges"; "e" ] ~docv:"M" ~doc)
    in
    let labels =
      let doc = "Comma-separated label alphabet for --generate." in
      Arg.(value & opt (list string) [ "a"; "b"; "c"; "d" ] & info [ "labels" ] ~docv:"LS" ~doc)
    in
    let seed =
      let doc = "PRNG seed for --generate (packing is deterministic)." in
      Arg.(value & opt int 42 & info [ "seed"; "s" ] ~docv:"SEED" ~doc)
    in
    let run input generate nodes edges labels seed output =
      (match (input, generate) with
      | Some path, None ->
          let g = or_die (load_graph path) in
          D.pack_digraph g ~path:output
      | None, Some "uniform" ->
          let edges = Option.value edges ~default:(nodes * 4) in
          Gps.Graph.Generators.pack_uniform ~path:output ~nodes ~edges ~labels ~seed
      | None, Some other ->
          or_die (Error (Printf.sprintf "unknown --generate family %S (uniform)" other))
      | Some _, Some _ -> or_die (Error "pass either a GRAPH file or --generate, not both")
      | None, None -> or_die (Error "pack wants a GRAPH file or --generate"));
      match D.open_map output with
      | Error e -> or_die (Error (D.open_error_to_string e))
      | Ok d ->
          Printf.printf "packed %d nodes, %d edges, %d labels into %s (%d bytes)\n"
            (D.base_nodes d) (D.base_edges d) (D.base_labels d) output (D.file_bytes d)
    in
    Cmd.v
      (Cmd.info "pack"
         ~doc:
           "Pack a graph into the mmap-ready binary CSR format served by 'load_file' \
            and 'gps serve --load'")
      Term.(const run $ input $ generate $ nodes $ edges $ labels $ seed $ output)
  in
  let info_cmd =
    let file =
      let doc = "Packed binary CSR file." in
      Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
    in
    let do_verify =
      let doc =
        "Recompute the payload CRC32 and check it against the checksum trailer — an \
         O(file) read; exit 1 on mismatch. Files packed before trailers existed report \
         'absent'."
      in
      Arg.(value & flag & info [ "verify" ] ~doc)
    in
    let run path do_verify =
      match D.open_map path with
      | Error e -> or_die (Error (Printf.sprintf "%s: %s" path (D.open_error_to_string e)))
      | Ok d ->
          let v = D.snapshot d in
          Printf.printf "path   : %s\n" path;
          Printf.printf "bytes  : %d\n" (D.file_bytes d);
          Printf.printf "nodes  : %d\n" (D.base_nodes d);
          Printf.printf "edges  : %d\n" (D.base_edges d);
          Printf.printf "labels : %d" (D.base_labels d);
          let shown = min 12 (D.base_labels d) in
          if shown > 0 then begin
            print_string "  (";
            for l = 0 to shown - 1 do
              if l > 0 then print_string " ";
              print_string (D.label_name v l)
            done;
            if shown < D.base_labels d then print_string " ...";
            print_string ")"
          end;
          print_newline ();
          if do_verify then
            match D.verify d with
            | D.Verified { crc; bytes } ->
                Printf.printf "crc    : ok (crc32 0x%08x over %d payload bytes)\n" crc bytes
            | D.No_trailer ->
                Printf.printf "crc    : absent (packed before checksum trailers; repack to add one)\n"
            | D.Crc_mismatch { stored; computed } ->
                Printf.printf "crc    : MISMATCH (trailer 0x%08x, computed 0x%08x)\n" stored
                  computed;
                or_die (Error (Printf.sprintf "%s: payload corrupt" path))
    in
    Cmd.v
      (Cmd.info "info"
         ~doc:
           "Validate a packed binary CSR file and print its header facts; --verify also \
            checks the payload checksum")
      Term.(const run $ file $ do_verify)
  in
  Cmd.group
    (Cmd.info "graph" ~doc:"Pack and inspect out-of-core binary CSR graph files")
    [ pack_cmd; info_cmd ]

(* ---------------------------------------------------------------- *)
(* store: integrity tooling for mutation logs *)

let store_cmd =
  let module St = Gps.Graph.Store in
  let log_arg =
    let doc = "Store mutation log (the file passed to Store.openfile)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"LOG" ~doc)
  in
  let format_name = function
    | St.Text_v1 -> "text (v1)"
    | St.Framed_v2 -> "framed (v2, checksummed)"
  in
  let outcome_name = function
    | `Clean -> "clean"
    | `Torn_tail -> "torn tail (normal crash recovery)"
    | `Corrupt_record -> "CORRUPT RECORD"
  in
  let print_info (r : St.recovery_info) =
    Printf.printf "format   : %s\n" (format_name r.St.format);
    Printf.printf "records  : %d\n" r.St.entries_replayed;
    Printf.printf "tail     : %s" (outcome_name r.St.outcome);
    if r.St.bytes_discarded > 0 then
      Printf.printf " (%d bytes past the last valid record)" r.St.bytes_discarded;
    print_newline ()
  in
  let verify_cmd =
    let run path =
      match St.verify path with
      | Error msg -> or_die (Error (Printf.sprintf "%s: %s" path msg))
      | Ok r ->
          print_info r;
          if r.St.outcome = `Corrupt_record then
            or_die
              (Error
                 (Printf.sprintf
                    "%s: checksum failure mid-log — 'gps store recover %s' truncates at \
                     the last valid record"
                    path path))
    in
    Cmd.v
      (Cmd.info "verify"
         ~doc:
           "Read-only integrity check of a store log: replay every record's framing and \
            checksum without touching the file; exit 1 on a corrupt record")
      Term.(const run $ log_arg)
  in
  let recover_cmd =
    let run path =
      let st =
        try St.openfile ~recover:true path
        with Failure msg | Sys_error msg -> or_die (Error (Printf.sprintf "%s: %s" path msg))
      in
      let r = St.recovery st in
      let g = St.graph st in
      St.close st;
      print_info r;
      Printf.printf "graph    : %d nodes, %d edges\n" (Digraph.n_nodes g)
        (Digraph.n_edges g);
      if r.St.bytes_discarded > 0 then
        Printf.printf "truncated %d unrecoverable bytes\n" r.St.bytes_discarded
      else print_endline "nothing to repair"
    in
    Cmd.v
      (Cmd.info "recover"
         ~doc:
           "Repair a store log in place: truncate at the last record with a valid \
            checksum (discarding any torn or corrupt tail) and report what survived")
      Term.(const run $ log_arg)
  in
  Cmd.group
    (Cmd.info "store"
       ~doc:"Verify and repair persistent graph store mutation logs (CRC-framed WAL)")
    [ verify_cmd; recover_cmd ]

(* ---------------------------------------------------------------- *)
(* identify: L* against a known query (a teacher demo) *)

let identify_cmd =
  let run qs =
    let q = or_die (Gps.parse_query qs) in
    match Gps.Learning.Lstar.learn_query q with
    | Ok (learned, stats) ->
        Printf.printf "target      : %s\n" (Gps.Query.Rpq.to_string q);
        Printf.printf "identified  : %s\n" (Gps.Query.Rpq.to_string learned);
        Printf.printf "equal       : %b\n" (Gps.Query.Rpq.equal_lang learned q);
        Printf.printf "queries     : %d membership, %d equivalence\n"
          stats.Gps.Learning.Lstar.membership_queries
          stats.Gps.Learning.Lstar.equivalence_queries;
        Printf.printf "minimal DFA : %d states\n" stats.Gps.Learning.Lstar.states
    | Error e ->
        prerr_endline ("gps: " ^ e);
        exit 1
  in
  Cmd.v
    (Cmd.info "identify"
       ~doc:"Identify a query's language with Angluin's L* (membership-query demo)")
    Term.(const run $ query_pos 0)

(* ---------------------------------------------------------------- *)
(* trace: offline work on JSONL span traces *)

let trace_file_arg =
  let doc = "JSONL trace file written by --trace, or '-' for stdin." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)

let load_trace = function
  | "-" -> Gps.Obs.Summary.load_channel ~name:"<stdin>" stdin
  | file -> Gps.Obs.Summary.load_file file

let trace_cmd =
  let summary_cmd =
    let timings =
      let doc =
        "Include the duration columns (mean_us/max_us). Pass --timings=false for output \
         that only depends on the work done, not on how fast it ran."
      in
      Arg.(value & opt bool true & info [ "timings" ] ~docv:"BOOL" ~doc)
    in
    let json =
      let doc = "Emit the summary as one JSON object instead of a table." in
      Arg.(value & flag & info [ "json" ] ~doc)
    in
    let sort =
      let doc =
        "Row order: 'name' (ascending, the default) or 'count' / 'total' / 'max' / 'mean' \
         (descending — biggest first)."
      in
      Arg.(value & opt string "name" & info [ "sort" ] ~docv:"KEY" ~doc)
    in
    let run file timings json sort =
      let by = or_die (Gps.Obs.Summary.order_of_string sort) in
      let spans = or_die (load_trace file) in
      let rows = Gps.Obs.Summary.sort ~by (Gps.Obs.Summary.aggregate spans) in
      if json then
        print_endline
          (Gps.Graph.Json.value_to_string ~pretty:true (Gps.Obs.Summary.to_json ~timings rows))
      else Format.printf "%a" (Gps.Obs.Summary.pp ~timings) rows
    in
    Cmd.v
      (Cmd.info "summary" ~doc:"Aggregate a JSONL trace into per-span-name statistics")
      Term.(const run $ trace_file_arg $ timings $ json $ sort)
  in
  let flame_cmd =
    let run file =
      let spans = or_die (load_trace file) in
      print_string (Gps.Obs.Flame.to_string (Gps.Obs.Flame.fold spans))
    in
    Cmd.v
      (Cmd.info "flame"
         ~doc:
           "Fold a JSONL trace into flame-graph stacks ('a;b;c self_ns' lines for \
            flamegraph.pl or speedscope)")
      Term.(const run $ trace_file_arg)
  in
  Cmd.group (Cmd.info "trace" ~doc:"Inspect JSONL span traces") [ summary_cmd; flame_cmd ]

(* ---------------------------------------------------------------- *)
(* profile: run a query repeatedly and attribute the parallel capacity *)

let profile_cmd =
  let runs =
    let doc = "Profiled repetitions aggregated into the attribution (default 5)." in
    Arg.(value & opt int 5 & info [ "runs" ] ~docv:"N" ~doc)
  in
  let par_threshold =
    let doc =
      "Minimum frontier size for a BFS level to run on the domain pool. Default: 1024. \
       Lower it to profile parallel scheduling on small graphs."
    in
    Arg.(value & opt (some int) None & info [ "par-threshold" ] ~docv:"N" ~doc)
  in
  let json =
    let doc = "Emit the attribution as JSON (the BENCH_par.json per-size record)." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run path qs runs par_threshold json domains =
    if runs < 1 then or_die (Error "--runs must be >= 1");
    let domains =
      match domains with
      | Some n when n >= 2 -> n
      | Some _ -> or_die (Error "--domains must be >= 2 to profile parallel execution")
      | None -> max 2 (Gps.Par.Pool.default_domains ())
    in
    let g = or_die (load_graph path) in
    let q = or_die (Gps.parse_query qs) in
    let source = Gps.Query.Eval.Frozen (g, Gps.Graph.Csr.freeze g) in
    let r = Gps.Query.Profile.run ~runs ?par_threshold ~domains source q in
    if json then
      print_endline (Gps.Graph.Json.value_to_string ~pretty:true (Gps.Query.Profile.result_to_json r))
    else begin
      Printf.printf "profile: %s on %s\n\n" (Gps.Query.Rpq.to_string q) path;
      Format.printf "%a@?" Gps.Query.Profile.pp r
    end
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Profile a query's parallel execution: run it N times with scheduler and GC \
          telemetry on and print an attribution table (compute vs imbalance vs \
          barrier+wake vs GC vs sequential idle)")
    Term.(const run $ graph_arg $ query_pos 1 $ runs $ par_threshold $ json $ domains_arg)

(* ---------------------------------------------------------------- *)
(* metrics: the process/service telemetry, human- or scraper-facing *)

let metrics_cmd =
  let prom =
    let doc = "Render in Prometheus text exposition format instead of JSON." in
    Arg.(value & flag & info [ "prom" ] ~doc)
  in
  let prom_compat =
    let doc =
      "With $(b,--prom), also emit the legacy quantile-gauge families \
       (_p50/_p90/_p99/_mean) next to the native histogram exposition — one release of \
       dashboard overlap. Local render only; a scraped server decides from its own \
       --prom-compat flag."
    in
    Arg.(value & flag & info [ "prom-compat" ] ~doc)
  in
  let connect =
    let doc =
      "Scrape a running 'gps serve --port' instance at $(docv) instead of dumping this \
       process's (empty) registries."
    in
    Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"HOST:PORT" ~doc)
  in
  let timeout_arg =
    let doc = "Connect and read timeout (seconds) for --connect." in
    Arg.(value & opt float 5.0 & info [ "timeout" ] ~docv:"S" ~doc)
  in
  let retries_arg =
    let doc =
      "Retry --connect up to $(docv) additional times with jittered exponential backoff \
       before giving up (a scrape racing a restarting server should not flap)."
    in
    Arg.(value & opt int 2 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let scrape addr prom timeout retries =
    let host, port = parse_hostport addr in
    let req = if prom then Proto.Metrics_prom else Proto.Metrics { timings = true } in
    match round_trip ~host ~port ~timeout ~retries req with
    | Proto.Prom_dump text -> print_string text
    | Proto.Metrics_dump m -> print_endline (Gps.Graph.Json.value_to_string ~pretty:true m)
    | Proto.Err e -> or_die (Error (Printf.sprintf "%s: %s" e.Proto.code e.Proto.message))
    | _ -> or_die (Error "unexpected response kind")
  in
  let run prom prom_compat connect timeout retries =
    match connect with
    | Some addr -> scrape addr prom timeout retries
    | None ->
        if prom then print_string (Gps.Obs.Prom.render ~compat:prom_compat ())
        else
          let counters =
            Gps.Graph.Json.Object
              (List.map
                 (fun (k, v) -> (k, Gps.Graph.Json.Number (float_of_int v)))
                 (Gps.Obs.Counter.snapshot ()))
          in
          let gauges =
            Gps.Graph.Json.Object
              (List.map (fun (k, v) -> (k, Gps.Graph.Json.Number v)) (Gps.Obs.Gauge.snapshot ()))
          in
          print_endline
            (Gps.Graph.Json.value_to_string ~pretty:true
               (Gps.Graph.Json.Object [ ("counters", counters); ("gauges", gauges) ]))
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Dump telemetry registries (counters, gauges, histograms) as JSON or Prometheus \
          text, locally or scraped from a running server")
    Term.(const run $ prom $ prom_compat $ connect $ timeout_arg $ retries_arg)

(* ---------------------------------------------------------------- *)
(* workload: PathForge-style mixes and open-loop load storms *)

let workload_cmd =
  let module W = Gps.Workload in
  let mix_names () = String.concat ", " (List.map (fun s -> s.W.Mix.name) W.Mix.specs) in
  let find_spec name =
    match W.Mix.find_spec name with
    | Some s -> s
    | None ->
        or_die (Error (Printf.sprintf "unknown mix %S (available: %s)" name (mix_names ())))
  in
  let generate_cmd =
    let mix =
      let doc = "Mix to generate: smoke, heavy-star, interactive or paper." in
      Arg.(value & opt string "smoke" & info [ "mix"; "m" ] ~docv:"NAME" ~doc)
    in
    let seed =
      let doc = "PRNG seed — generation is byte-identical for a fixed seed." in
      Arg.(value & opt int 42 & info [ "seed"; "s" ] ~docv:"SEED" ~doc)
    in
    let graph_name =
      let doc =
        "Catalog graph name the queries should target on the server (default: the graph \
         file's basename without extension)."
      in
      Arg.(value & opt (some string) None & info [ "graph-name" ] ~docv:"NAME" ~doc)
    in
    let output =
      let doc = "Output JSONL file (default: stdout)." in
      Arg.(value & opt (some string) None & info [ "output"; "o" ] ~docv:"FILE" ~doc)
    in
    let run path mix seed graph_name output =
      let g = or_die (load_graph path) in
      let spec = find_spec mix in
      let graph_name =
        match graph_name with
        | Some n -> n
        | None -> Filename.remove_extension (Filename.basename path)
      in
      let m =
        try W.Mix.generate spec ~graph_name ~seed g
        with Invalid_argument msg -> or_die (Error msg)
      in
      let text = W.Mix.to_jsonl m in
      match output with
      | None -> print_string text
      | Some file ->
          let oc = try open_out file with Sys_error msg -> or_die (Error msg) in
          output_string oc text;
          close_out oc;
          Printf.printf "wrote %d queries (mix %s, seed %d) to %s\n"
            (List.length m.W.Mix.entries) m.W.Mix.mix seed file
    in
    Cmd.v
      (Cmd.info "generate"
         ~doc:"Instantiate a named query mix against a graph (seeded, reproducible JSONL)")
      Term.(const run $ graph_arg $ mix $ seed $ graph_name $ output)
  in
  let show_cmd =
    let mix =
      let doc = "Show one mix's shape instead of the whole taxonomy." in
      Arg.(value & opt (some string) None & info [ "mix"; "m" ] ~docv:"NAME" ~doc)
    in
    let run mix =
      match mix with
      | Some name ->
          let spec = find_spec name in
          Printf.printf "%s — %s\n" spec.W.Mix.name spec.W.Mix.description;
          if spec.W.Mix.shape = [] then
            List.iter
              (fun (qname, q) -> Printf.printf "  %-5s %s\n" qname q)
              (W.Mix.paper_city_queries @ W.Mix.paper_bio_queries)
          else
            List.iter
              (fun (aq, count) ->
                match W.Pattern.find aq with
                | Some p ->
                    Printf.printf "  %-5s x%-3d %-10s %s\n" aq count p.W.Pattern.source
                      (W.Pattern.to_string p)
                | None -> ())
              spec.W.Mix.shape
      | None ->
          print_endline "abstract patterns (PathForge AQ1-AQ28; repo notation on the right):";
          List.iter
            (fun p ->
              Printf.printf "  %-5s %-10s %s\n" p.W.Pattern.id p.W.Pattern.source
                (W.Pattern.to_string p))
            W.Pattern.all;
          print_endline "";
          print_endline "mixes:";
          List.iter
            (fun s ->
              let size =
                if s.W.Mix.shape = [] then
                  List.length (W.Mix.paper_city_queries @ W.Mix.paper_bio_queries)
                else List.fold_left (fun acc (_, n) -> acc + n) 0 s.W.Mix.shape
              in
              Printf.printf "  %-12s %2d queries — %s\n" s.W.Mix.name size s.W.Mix.description)
            W.Mix.specs
    in
    Cmd.v
      (Cmd.info "show" ~doc:"List the abstract-pattern taxonomy and the named mixes")
      Term.(const run $ mix)
  in
  let storm_cmd =
    let mixfile =
      let doc = "JSONL mix produced by 'gps workload generate', or '-' for stdin." in
      Arg.(required & pos 0 (some string) None & info [] ~docv:"MIX" ~doc)
    in
    let connect =
      let doc = "The running 'gps serve --port' instance to storm." in
      Arg.(required & opt (some string) None & info [ "connect" ] ~docv:"HOST:PORT" ~doc)
    in
    let rps =
      let doc = "Target aggregate request rate (open loop: requests are sent on schedule)." in
      Arg.(value & opt float 100.0 & info [ "rps" ] ~docv:"N" ~doc)
    in
    let duration =
      let doc = "Storm duration in seconds." in
      Arg.(value & opt float 5.0 & info [ "duration"; "d" ] ~docv:"S" ~doc)
    in
    let clients =
      let doc = "Client connections (each pipelines its share of the schedule)." in
      Arg.(value & opt int 8 & info [ "clients"; "c" ] ~docv:"N" ~doc)
    in
    let deadline_ms =
      let doc = "Per-request deadline sent on the wire with every query." in
      Arg.(value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)
    in
    let load =
      let doc =
        "Provision graphs first: comma-separated NAME=FILE pairs pushed to the server as \
         inline edge-list text before the storm starts."
      in
      Arg.(value & opt (list string) [] & info [ "load" ] ~docv:"SPECS" ~doc)
    in
    let json =
      let doc = "Emit the report as one JSON object instead of a table." in
      Arg.(value & flag & info [ "json" ] ~doc)
    in
    let run mixfile connect rps duration clients deadline_ms load json =
      let host, port = parse_hostport connect in
      let text =
        match mixfile with
        | "-" -> In_channel.input_all stdin
        | file -> (
            try In_channel.with_open_bin file In_channel.input_all
            with Sys_error msg -> or_die (Error msg))
      in
      let mix = or_die (W.Mix.of_jsonl text) in
      List.iter
        (fun spec ->
          match String.index_opt spec '=' with
          | Some i ->
              let name = String.sub spec 0 i in
              let file = String.sub spec (i + 1) (String.length spec - i - 1) in
              let text =
                try In_channel.with_open_bin file In_channel.input_all
                with Sys_error msg -> or_die (Error msg)
              in
              or_die (W.Storm.load_graph ~host ~port ~name ~text)
          | None -> or_die (Error (Printf.sprintf "--load wants NAME=FILE, got %S" spec)))
        load;
      let config =
        { W.Storm.host; port; rps; duration_s = duration; connections = clients; deadline_ms }
      in
      match W.Storm.run config mix with
      | Error msg -> or_die (Error msg)
      | Ok outcome ->
          if json then
            print_endline
              (Gps.Graph.Json.value_to_string ~pretty:true (W.Storm.outcome_to_json outcome))
          else Format.printf "%a@?" W.Storm.pp_outcome outcome
    in
    Cmd.v
      (Cmd.info "storm"
         ~doc:
           "Replay a mix open-loop against a live server at a target RPS, reporting \
            p50/p95/p99 latency, achieved rate and server shed/timeout counters")
      Term.(const run $ mixfile $ connect $ rps $ duration $ clients $ deadline_ms $ load $ json)
  in
  Cmd.group
    (Cmd.info "workload"
       ~doc:"PathForge-style query-mix generation and open-loop load storms")
    [ generate_cmd; show_cmd; storm_cmd ]

(* ---------------------------------------------------------------- *)
(* top: live dashboard off a running server's timeseries endpoint *)

let top_cmd =
  let module Json = Gps.Graph.Json in
  let connect =
    let doc = "The running 'gps serve --port --sample-every' instance to watch." in
    Arg.(required & opt (some string) None & info [ "connect" ] ~docv:"HOST:PORT" ~doc)
  in
  let once =
    let doc = "Render one frame and exit (no screen clearing) — scriptable output." in
    Arg.(value & flag & info [ "once" ] ~doc)
  in
  let interval =
    let doc = "Refresh interval in seconds." in
    Arg.(value & opt float 2.0 & info [ "interval" ] ~docv:"S" ~doc)
  in
  let window =
    let doc = "Ask the server for its last $(docv) samples each refresh." in
    Arg.(value & opt int 60 & info [ "window" ] ~docv:"N" ~doc)
  in
  let timeout_arg =
    let doc = "Connect and read timeout in seconds." in
    Arg.(value & opt float 5.0 & info [ "timeout" ] ~docv:"S" ~doc)
  in
  (* field access with zero defaults: rates omit zero counters *)
  let num ?(default = 0.) v k =
    match Json.member k v with Some (Json.Number n) -> n | _ -> default
  in
  let obj v k =
    match Json.member k v with Some (Json.Object _ as o) -> o | _ -> Json.Object []
  in
  let find_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i =
      if i + m > n then None else if String.sub s i m = sub then Some i else go (i + 1)
    in
    go 0
  in
  (* server.request_ns{endpoint="query"} -> query *)
  let endpoint_of_key k =
    match find_sub k "{endpoint=\"" with
    | Some i -> (
        let start = i + String.length "{endpoint=\"" in
        match String.index_from_opt k start '"' with
        | Some stop -> String.sub k start (stop - start)
        | None -> k)
    | None -> k
  in
  let render ~addr series =
    let buf = Buffer.create 1024 in
    let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    let interval_s = num series "interval_s" in
    let finish () = Buffer.contents buf in
    let total = int_of_float (num series "total_samples") in
    let points =
      match Json.member "points" series with Some (Json.Array ps) -> ps | _ -> []
    in
    add "gps top — %s   sampler: every %gs, %d samples, %d interval(s) shown\n" addr
      interval_s total (List.length points);
    match List.rev points with
    | [] ->
        add "\n  (no intervals yet — the sampler needs at least two samples;\n";
        add "   refresh in %gs or raise --window)\n" interval_s;
        finish ()
    | last :: _ ->
        let avg f =
          match points with
          | [] -> 0.
          | ps -> List.fold_left (fun acc p -> acc +. f p) 0. ps /. float_of_int (List.length ps)
        in
        let rate p k = num (obj p "rates") k in
        let gauge p k = num (obj p "gauges") k in
        let hit_ratio p =
          let h = rate p "qcache.hits" and m = rate p "qcache.misses" in
          if h +. m <= 0. then Float.nan else 100. *. h /. (h +. m)
        in
        let pct v = if Float.is_nan v then "    -" else Printf.sprintf "%5.1f" v in
        add "\n%-22s %10s %10s\n" "rates (/s)" "last" "avg";
        List.iter
          (fun (label, key) ->
            add "  %-20s %10.1f %10.1f\n" label (rate last key) (avg (fun p -> rate p key)))
          [
            ("requests", "server.dispatches");
            ("errors", "server.dispatch_errors");
            ("sheds", "server.sheds");
            ("timeouts", "server.timeouts");
            ("slow queries", "server.slow_queries");
            ("audit lines", "audit.emitted");
            ("eval par levels", "eval.par_levels");
            ("eval seq fallbacks", "eval.seq_fallbacks");
          ];
        add "  %-20s %10s %10s\n" "cache hit %" (pct (hit_ratio last))
          (pct (avg (fun p -> let r = hit_ratio p in if Float.is_nan r then 0. else r)));
        add "\ngauges (last interval)\n";
        List.iter
          (fun (label, key) -> add "  %-20s %10.0f\n" label (gauge last key))
          [
            ("inflight", "server.inflight");
            ("sessions", "server.sessions_active");
            ("cache entries", "server.qcache_size");
          ];
        (* only servers that actually recovered sessions at boot carry
           the recovery gauge; zero means a clean start *)
        if gauge last "recovery.sessions" > 0. then
          add "  %-20s %10.0f   (rebuilt at boot)\n" "recovered sessions"
            (gauge last "recovery.sessions");
        let hists = match obj last "hist" with Json.Object kvs -> kvs | _ -> [] in
        let request_hists =
          List.filter (fun (k, _) -> find_sub k "server.request_ns" = Some 0) hists
        in
        if request_hists <> [] then begin
          add "\n%-14s %8s %8s %8s %8s %8s  (last interval, ms)\n" "latency" "count"
            "p50" "p90" "p99" "max";
          List.iter
            (fun (k, h) ->
              let ms field = num h field /. 1e6 in
              add "  %-12s %8.0f %8.2f %8.2f %8.2f %8.2f\n" (endpoint_of_key k)
                (num h "count") (ms "p50") (ms "p90") (ms "p99") (ms "max"))
            request_hists
        end;
        (* GC / domains panel — present only against a server running
           with --profile (the gc.* / pool.* / runtime.* families);
           older or unprofiled servers simply don't grow the section *)
        let gc_hists =
          List.filter (fun (k, _) -> find_sub k "gc.pause_ns" = Some 0) hists
        in
        let pool_busy p =
          let busy = rate p "pool.busy_ns" and idle = rate p "pool.idle_ns" in
          if busy +. idle <= 0. then Float.nan else 100. *. busy /. (busy +. idle)
        in
        let has_gc_rates p =
          rate p "gc.minor_collections" > 0. || rate p "gc.major_slices" > 0.
        in
        let domains_live = gauge last "runtime.domains_live" in
        if gc_hists <> [] || domains_live > 0. || has_gc_rates last
           || not (Float.is_nan (pool_busy last)) then begin
          add "\ngc / domains (last interval)\n";
          add "  %-20s %10.0f\n" "domains live" domains_live;
          add "  %-20s %10.1f %10.1f   (last, avg /s)\n" "minor collections"
            (rate last "gc.minor_collections")
            (avg (fun p -> rate p "gc.minor_collections"));
          add "  %-20s %10.1f %10.1f   (last, avg /s)\n" "major slices"
            (rate last "gc.major_slices")
            (avg (fun p -> rate p "gc.major_slices"));
          add "  %-20s %10s %10s   (last, avg)\n" "pool busy %" (pct (pool_busy last))
            (pct (avg (fun p -> let b = pool_busy p in if Float.is_nan b then 0. else b)));
          if gc_hists <> [] then begin
            add "  %-26s %8s %8s %8s  (last interval, us)\n" "gc pauses" "count" "p99" "max";
            List.iter
              (fun (k, h) ->
                let us field = num h field /. 1e3 in
                (* gc.pause_ns{domain="0",gc="minor"} -> domain=0 minor *)
                let label =
                  match find_sub k "{" with
                  | Some i ->
                      String.sub k i (String.length k - i)
                      |> String.map (fun c ->
                             match c with '{' | '}' | '"' -> ' ' | c -> c)
                      |> String.trim
                  | None -> k
                in
                add "  %-26s %8.0f %8.0f %8.0f\n" label (num h "count") (us "p99") (us "max"))
              gc_hists
          end
        end;
        finish ()
  in
  let run addr once interval window timeout =
    if window < 2 then or_die (Error "--window must be >= 2 (an interval needs two samples)");
    if interval <= 0. then or_die (Error "--interval must be positive");
    let host, port = parse_hostport addr in
    let req = Proto.Timeseries { last = Some window; downsample = None } in
    let rec loop () =
      (match round_trip ~host ~port ~timeout req with
      | Proto.Timeseries_dump series ->
          if not once then print_string "\027[H\027[2J";
          print_string (render ~addr series);
          flush stdout
      | Proto.Err e -> or_die (Error (Printf.sprintf "%s: %s" e.Proto.code e.Proto.message))
      | _ -> or_die (Error "unexpected response kind"));
      if not once then begin
        Unix.sleepf interval;
        loop ()
      end
    in
    loop ()
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live dashboard for a running server: request/shed/timeout rates, cache hit \
          ratio, eval level mix, per-endpoint latency percentiles and — against a \
          server running with --profile — a GC/domains panel (pause tails, collection \
          rates, pool busy fraction), refreshed from the server's in-process timeseries")
    Term.(const run $ connect $ once $ interval $ window $ timeout_arg)

(* ---------------------------------------------------------------- *)
(* audit: offline aggregation of --audit wide-event logs *)

let audit_cmd =
  let module WE = Gps.Obs.Wide_event in
  let summary_cmd =
    let file =
      let doc = "JSONL audit log written by 'gps serve --audit', or '-' for stdin." in
      Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
    in
    let top =
      let doc = "How many slowest requests to list." in
      Arg.(value & opt int 5 & info [ "top" ] ~docv:"K" ~doc)
    in
    let json =
      let doc = "Emit the summary as one JSON object instead of a table." in
      Arg.(value & flag & info [ "json" ] ~doc)
    in
    let run file top json =
      if top < 0 then or_die (Error "--top must be >= 0");
      let events, malformed =
        match file with
        | "-" -> WE.load_jsonl stdin
        | f -> (
            try In_channel.with_open_bin f WE.load_jsonl
            with Sys_error msg -> or_die (Error msg))
      in
      let s = WE.summarize ~top ~malformed events in
      if json then
        print_endline (Gps.Graph.Json.value_to_string ~pretty:true (WE.summary_to_json s))
      else Format.printf "%a@?" WE.pp_summary s
    in
    Cmd.v
      (Cmd.info "summary"
         ~doc:
           "Aggregate a wide-event audit log: per-endpoint counts, error rates and \
            latency percentiles, cache-state mix and the slowest requests")
      Term.(const run $ file $ top $ json)
  in
  Cmd.group (Cmd.info "audit" ~doc:"Inspect wide-event request audit logs") [ summary_cmd ]

(* ---------------------------------------------------------------- *)
(* serve *)

let serve_cmd =
  let stdio =
    let doc = "Serve newline-delimited JSON on stdin/stdout (the default)." in
    Arg.(value & flag & info [ "stdio" ] ~doc)
  in
  let port =
    let doc = "Listen on this TCP port instead of stdio (one thread per connection)." in
    Arg.(value & opt (some int) None & info [ "port"; "p" ] ~docv:"PORT" ~doc)
  in
  let host =
    let doc = "Bind address for --port." in
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc)
  in
  let preload =
    let doc =
      "Preload graphs before serving: comma-separated NAME=SOURCE pairs where SOURCE is \
       a file path or a builtin dataset name ('figure1' / 'transpole'); a bare builtin \
       name is also accepted."
    in
    Arg.(value & opt (list string) [] & info [ "load" ] ~docv:"SPECS" ~doc)
  in
  let cache =
    let doc = "Query-result cache capacity (0 disables caching)." in
    Arg.(value & opt int 256 & info [ "cache" ] ~docv:"N" ~doc)
  in
  let slow_ms =
    let doc =
      "Log every query taking at least $(docv) milliseconds as one JSON line on stderr \
       (the slow-query log). 0 logs every query."
    in
    Arg.(value & opt (some float) None & info [ "slow-ms" ] ~docv:"MS" ~doc)
  in
  let deadline_ms =
    let doc =
      "Default per-request deadline in milliseconds. A request exceeding it is \
       cooperatively cancelled and answered with a typed 'timeout' error carrying the \
       partial EXPLAIN report. Clients may send their own 'deadline_ms', bounded by \
       --deadline-cap-ms."
    in
    Arg.(value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let deadline_cap_ms =
    let doc = "Ceiling on client-requested (and default) deadlines, in milliseconds." in
    Arg.(value & opt (some float) None & info [ "deadline-cap-ms" ] ~docv:"MS" ~doc)
  in
  let max_inflight =
    let doc =
      "Admission control: refuse requests beyond $(docv) concurrently dispatching ones \
       with a fast typed 'overloaded' error. 0 = unbounded."
    in
    Arg.(value & opt int 0 & info [ "max-inflight" ] ~docv:"N" ~doc)
  in
  let max_frame_bytes =
    let doc =
      "Reject request frames over $(docv) bytes with a 'frame-too-large' error and close \
       the connection."
    in
    Arg.(value & opt int (8 * 1024 * 1024) & info [ "max-frame-bytes" ] ~docv:"BYTES" ~doc)
  in
  let io_timeout_s =
    let doc =
      "Per-connection socket read/write timeout in seconds (TCP): a stalled peer cannot \
       hold its thread forever."
    in
    Arg.(value & opt (some float) None & info [ "io-timeout-s" ] ~docv:"S" ~doc)
  in
  let audit =
    let doc =
      "Append one wide-event JSON line per wire request to $(docv) — the canonical \
       request audit log (aggregate it with 'gps audit summary $(docv)')."
    in
    Arg.(value & opt (some string) None & info [ "audit" ] ~docv:"FILE" ~doc)
  in
  let audit_sample =
    let doc =
      "Head-based sampling for --audit: keep 1-in-$(docv) requests by id. Errors and \
       requests at or over --slow-ms are always kept."
    in
    Arg.(value & opt int 1 & info [ "audit-sample" ] ~docv:"N" ~doc)
  in
  let sample_every =
    let doc =
      "Snapshot all telemetry registries into the in-process timeseries ring every \
       $(docv) seconds — feeds the 'timeseries' wire op and 'gps top'. 0 disables the \
       sampler."
    in
    Arg.(value & opt float 1.0 & info [ "sample-every" ] ~docv:"S" ~doc)
  in
  let prom_compat =
    let doc =
      "Also emit the legacy quantile-gauge families (_p50/_p90/_p99/_mean) from the \
       Prometheus endpoint, for one release of dashboard overlap."
    in
    Arg.(value & flag & info [ "prom-compat" ] ~doc)
  in
  let profile =
    let doc =
      "Runtime & scheduler observability: subscribe to the OCaml runtime's GC/domain \
       events (gc_pause_ns histograms, domains_live) and enable per-job pool telemetry \
       (pool.busy/idle/barrier, wake latency), all flowing through the metrics, \
       Prometheus and timeseries surfaces; '--explain' query reports grow a per-level \
       efficiency section. Off by default: the profiling paths cost nothing when \
       disabled."
    in
    Arg.(value & flag & info [ "profile" ] ~doc)
  in
  let state_dir =
    let doc =
      "Session durability: journal every acknowledged session mutation to a checksummed \
       per-session WAL under $(docv), and on startup replay the journals found there to \
       rebuild the sessions a crashed server was holding. Without it, sessions are \
       memory-only."
    in
    Arg.(value & opt (some string) None & info [ "state-dir" ] ~docv:"DIR" ~doc)
  in
  let fsync =
    let doc =
      "When journaled session state is forced to disk before a mutation is acknowledged: \
       'always' (default — every acked step survives power loss), 'every:N' (one fsync \
       per N appends, bounded loss window), 'never' (page cache only)."
    in
    Arg.(value & opt string "always" & info [ "fsync" ] ~docv:"POLICY" ~doc)
  in
  let run stdio port host preload cache slow_ms deadline_ms deadline_cap_ms max_inflight
      max_frame_bytes io_timeout_s audit audit_sample sample_every prom_compat profile
      state_dir fsync trace domains =
    apply_domains domains;
    let module Srv = Gps.Server.Server in
    let module P = Gps.Server.Protocol in
    (* chaos runs arm fault injection from the environment before any
       request is served; a malformed spec aborts with exit 2 *)
    Gps.Obs.Fault.init_from_env ();
    (* the service always traces: to the JSONL file when --trace is
       given, otherwise into an in-memory ring the metrics endpoint
       summarizes *)
    let trace_oc =
      match trace with
      | Some path -> (
          try
            let oc = open_out path in
            Gps.Obs.Trace.enable (Gps.Obs.Trace.Jsonl oc);
            Some oc
          with Sys_error msg -> or_die (Error msg))
      | None ->
          Gps.Obs.Trace.enable (Gps.Obs.Trace.Memory (Gps.Obs.Trace.buffer ()));
          None
    in
    at_exit (fun () ->
        Gps.Obs.Trace.disable ();
        Option.iter close_out trace_oc);
    if audit_sample < 1 then or_die (Error "--audit-sample must be >= 1");
    if sample_every < 0. then or_die (Error "--sample-every must be >= 0 (0 disables)");
    let audit_oc =
      Option.map
        (fun path ->
          try open_out path with Sys_error msg -> or_die (Error msg))
        audit
    in
    at_exit (fun () -> Option.iter close_out audit_oc);
    let audit_sink =
      Option.map (fun oc -> Gps.Obs.Wide_event.sink ~sample:audit_sample ?slow_ms oc) audit_oc
    in
    let fsync_policy =
      match Gps.Graph.Wal.policy_of_string fsync with
      | Ok p -> p
      | Error msg -> or_die (Error ("--fsync: " ^ msg))
    in
    let server =
      match
        Srv.create
          ~config:
            {
              Srv.default_config with
              Srv.cache_capacity = cache;
              Srv.slow_ms;
              Srv.deadline_ms;
              Srv.deadline_cap_ms;
              Srv.max_inflight;
              Srv.max_frame_bytes;
              Srv.io_timeout_s;
              Srv.audit = audit_sink;
              Srv.sample_every_s = (if sample_every > 0. then Some sample_every else None);
              Srv.prom_compat;
              Srv.profile;
              Srv.state_dir;
              Srv.fsync = fsync_policy;
            }
          ()
      with
      | s -> s
      | exception Failure msg -> or_die (Error msg)
    in
    at_exit (fun () -> Srv.stop_sampler server);
    (* a --load file whose first bytes spell the packed-CSR magic is
       mmapped in place instead of parsed into the heap *)
    let is_packed path =
      match In_channel.with_open_bin path (fun ic -> really_input_string ic 8) with
      | magic -> magic = "GPSCSR01"
      | exception (End_of_file | Sys_error _) -> false
    in
    List.iter
      (fun spec ->
        let req =
          match String.index_opt spec '=' with
          | Some i -> (
              let name = String.sub spec 0 i in
              let v = String.sub spec (i + 1) (String.length spec - i - 1) in
              if not (Sys.file_exists v) then P.Load { name; source = P.Builtin v }
              else if is_packed v then P.Load_file { name; path = v }
              else P.Load { name; source = P.Path v })
          | None -> P.Load { name = spec; source = P.Builtin spec }
        in
        match Srv.handle server req with
        | P.Err e -> or_die (Error (Printf.sprintf "--load %s: %s" spec e.P.message))
        | _ -> ())
      preload;
    (* recovery replays session journals against the preloaded catalog,
       so it must run after --load and before the first request *)
    (match Srv.recover server with
    | None -> ()
    | Some r ->
        Printf.eprintf
          "gps: recovery: %d session(s) restored, %d failed, %d tail(s) truncated (%d \
           bytes) in %.1f ms\n\
           %!"
          r.Srv.sessions_restored r.Srv.sessions_failed r.Srv.entries_discarded
          r.Srv.bytes_discarded r.Srv.duration_ms);
    match port with
    | Some port -> (
        (* block SIGTERM/SIGINT before spawning any thread (children
           inherit the mask), then park the main thread in wait_signal:
           the first signal starts a graceful drain instead of killing
           the process mid-request *)
        ignore (Thread.sigmask Unix.SIG_BLOCK [ Sys.sigterm; Sys.sigint ]);
        match Srv.start_tcp server ~host ~port () with
        | tcp ->
            Printf.eprintf "gps: serving on %s:%d\n%!" host (Srv.tcp_port tcp);
            let signal = Thread.wait_signal [ Sys.sigterm; Sys.sigint ] in
            let signal_name = if signal = Sys.sigint then "SIGINT" else "SIGTERM" in
            Printf.eprintf "gps: %s received, draining %d connection(s)\n%!"
              signal_name (Srv.live_connections tcp);
            let forced = Srv.drain_tcp server tcp () in
            Printf.eprintf "gps: drained (%d forced close(s))\n%!" forced
        | exception Unix.Unix_error (e, _, _) ->
            or_die
              (Error
                 (Printf.sprintf "cannot listen on %s:%d: %s" host port
                    (Unix.error_message e))))
    | None ->
        ignore stdio;
        Srv.serve_channels server stdin stdout
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve the query/specification protocol (newline-delimited JSON) over stdio or TCP")
    Term.(
      const run $ stdio $ port $ host $ preload $ cache $ slow_ms $ deadline_ms
      $ deadline_cap_ms $ max_inflight $ max_frame_bytes $ io_timeout_s $ audit
      $ audit_sample $ sample_every $ prom_compat $ profile $ state_dir $ fsync
      $ trace_arg $ domains_arg)

(* ---------------------------------------------------------------- *)

let () =
  let doc = "interactive path query specification on graph databases" in
  let info = Cmd.info "gps" ~version:Gps.version ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            generate_cmd; stats_cmd; query_cmd; learn_cmd; session_cmd; dot_cmd; convert_cmd;
            graph_cmd; store_cmd; identify_cmd; serve_cmd; trace_cmd; profile_cmd;
            metrics_cmd; workload_cmd; top_cmd; audit_cmd;
          ]))
